"""Unit tests for the plan-cached iterative solver subsystem."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.errors import ConvergenceError, ShapeError
from repro.instrumentation import CacheStats, counters
from repro.iterative import (
    ConjugateGradientSolver,
    ConvergenceCriteria,
    IterativeRefinementSolver,
    IterativeResult,
    JacobiSolver,
    PowerIterationSolver,
    SORSolver,
)


def spd_dominant(rng: np.random.Generator, n: int, boost: float = 1.0) -> np.ndarray:
    """A symmetric, strictly diagonally dominant (hence SPD) matrix."""
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    matrix += (np.abs(matrix).sum(axis=1).max() + boost) * np.eye(n)
    return matrix


class TestConvergenceCriteria:
    def test_defaults_and_tolerance(self):
        criteria = ConvergenceCriteria()
        assert criteria.atol == 1e-10
        assert criteria.max_iter == 200
        assert criteria.tolerance(100.0) == criteria.atol
        scaled = ConvergenceCriteria(atol=1e-12, rtol=1e-8)
        assert scaled.tolerance(10.0) == 1e-12 + 1e-7

    def test_converged_and_diverged(self):
        criteria = ConvergenceCriteria(atol=1e-6, divergence_ratio=100.0)
        assert criteria.converged(1e-7, 0.0)
        assert not criteria.converged(1e-5, 0.0)
        assert criteria.diverged(float("nan"), 1.0)
        assert criteria.diverged(1e9, 2.0)
        assert not criteria.diverged(50.0, 2.0)  # 50 < 100 * max(2, 1)
        unguarded = ConvergenceCriteria(divergence_ratio=float("inf"))
        assert not unguarded.diverged(1e300, 1.0)
        # inf disables the guard entirely — even non-finite residuals run
        # to the iteration cap (the legacy Gauss-Seidel behaviour).
        assert not unguarded.diverged(float("inf"), 1.0)
        assert not unguarded.diverged(float("nan"), 1.0)

    def test_merged_and_hashable(self):
        criteria = ConvergenceCriteria()
        tighter = criteria.merged(atol=1e-14)
        assert tighter.atol == 1e-14 and criteria.atol == 1e-10
        assert hash(criteria) != hash(tighter)  # participates in plan keys

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergenceCriteria(atol=-1.0)
        with pytest.raises(ValueError):
            ConvergenceCriteria(atol=0.0, rtol=0.0)
        with pytest.raises(ValueError):
            ConvergenceCriteria(max_iter=0)
        with pytest.raises(ValueError):
            ConvergenceCriteria(divergence_ratio=1.0)


class TestJacobi:
    def test_converges_and_matches_direct_solve(self, rng):
        matrix = spd_dominant(rng, 9)
        b = rng.normal(size=9)
        result = JacobiSolver(3).solve(matrix, b)
        assert result.converged
        assert result.method == "jacobi"
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)
        assert result.residual_norm == result.residual_history[-1]
        assert len(result.residual_history) == result.iterations
        assert result.array_steps > 0

    def test_respects_initial_guess(self, rng):
        matrix = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        exact = np.linalg.solve(matrix, b)
        result = JacobiSolver(3).solve(matrix, b, x0=exact)
        assert result.iterations == 1
        assert result.converged

    def test_iteration_cap_is_not_an_error(self, rng):
        matrix = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        criteria = ConvergenceCriteria(atol=1e-280, max_iter=3)
        result = JacobiSolver(3, criteria=criteria).solve(matrix, b)
        assert result.iterations == 3
        assert not result.converged

    def test_divergence_guard_raises_typed_error(self, rng):
        # Spectral radius of the Jacobi iteration matrix is 3 here.
        matrix = np.array([[1.0, 3.0], [3.0, 1.0]])
        b = np.array([1.0, -1.0])
        criteria = ConvergenceCriteria(divergence_ratio=1e4)
        with pytest.raises(ConvergenceError) as excinfo:
            JacobiSolver(3, criteria=criteria).solve(matrix, b)
        assert excinfo.value.iterations > 0
        assert np.isfinite(excinfo.value.residual_norm)

    def test_validation(self, rng):
        solver = JacobiSolver(3)
        with pytest.raises(ShapeError):
            solver.solve(rng.normal(size=(3, 4)), rng.normal(size=3))
        with pytest.raises(ShapeError):
            solver.solve(spd_dominant(rng, 4), rng.normal(size=3))
        with pytest.raises(ShapeError):
            solver.solve(spd_dominant(rng, 4), rng.normal(size=4), x0=rng.normal(size=3))
        zero_diag = spd_dominant(rng, 3)
        zero_diag[1, 1] = 0.0
        with pytest.raises(ShapeError):
            solver.solve(zero_diag, rng.normal(size=3))


class TestSOR:
    def test_omega_one_is_gauss_seidel_bit_for_bit(self, rng):
        from repro.extensions.gauss_seidel import SystolicGaussSeidel

        matrix = spd_dominant(rng, 8)
        b = rng.normal(size=8)
        sor = SORSolver(3, omega=1.0).solve(matrix, b)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SystolicGaussSeidel(3).solve(matrix, b)
        assert np.array_equal(sor.x, legacy.x)
        assert sor.iterations == legacy.iterations
        assert sor.residual_history == legacy.residual_history
        assert sor.array_steps == legacy.array_steps

    @pytest.mark.parametrize("omega", [0.8, 1.2, 1.5])
    def test_relaxed_sweeps_converge(self, rng, omega):
        matrix = spd_dominant(rng, 10)
        b = rng.normal(size=10)
        result = SORSolver(4, omega=omega).solve(matrix, b)
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    def test_omega_validated(self):
        for omega in (0.0, 2.0, -0.5, 2.5):
            with pytest.raises(ValueError):
                SORSolver(3, omega=omega)


class TestConjugateGradient:
    def test_converges_in_at_most_n_iterations(self, rng):
        n = 8
        matrix = spd_dominant(rng, n)
        b = rng.normal(size=n)
        result = ConjugateGradientSolver(3).solve(matrix, b)
        assert result.converged
        assert result.iterations <= n + 1
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    def test_nonzero_initial_guess(self, rng):
        matrix = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        result = ConjugateGradientSolver(3).solve(matrix, b, x0=rng.normal(size=6))
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    def test_rejects_nonsymmetric(self, rng):
        matrix = spd_dominant(rng, 5)
        matrix[0, 1] += 1.0
        with pytest.raises(ShapeError):
            ConjugateGradientSolver(3).solve(matrix, rng.normal(size=5))

    def test_indefinite_matrix_raises_convergence_error(self, rng):
        matrix = np.diag([1.0, -1.0, 2.0, 3.0])
        b = np.ones(4)
        with pytest.raises(ConvergenceError):
            ConjugateGradientSolver(3).solve(matrix, b)


class TestIterativeRefinement:
    def test_polishes_to_direct_accuracy(self, rng):
        matrix = spd_dominant(rng, 10)
        b = rng.normal(size=10)
        result = IterativeRefinementSolver(4).solve(matrix, b)
        assert result.converged
        assert result.iterations <= 3  # LU solve + a refinement sweep or two
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-9)

    def test_second_solve_reuses_every_plan(self, rng):
        solver = IterativeRefinementSolver(3)
        matrix = spd_dominant(rng, 7)
        first = solver.solve(matrix, rng.normal(size=7))
        assert first.plan_builds_first_sweep > 0
        before = counters.snapshot()
        second = solver.solve(spd_dominant(rng, 7), rng.normal(size=7))
        assert counters.delta(before).plan_builds == 0
        assert second.plan_builds_first_sweep == 0
        assert second.plan_builds_warm_sweeps == 0


class TestPowerIteration:
    def test_finds_dominant_eigenpair(self, rng):
        eigenvalues = np.array([9.0, 3.0, 1.0, 0.5])
        q, _ = np.linalg.qr(rng.normal(size=(4, 4)))
        matrix = q @ np.diag(eigenvalues) @ q.T
        result = PowerIterationSolver(3).solve(matrix)
        assert result.converged
        assert result.eigenvalue == pytest.approx(9.0, rel=1e-8)
        dominant = q[:, 0]
        overlap = abs(float(result.x @ dominant))
        assert overlap == pytest.approx(1.0, abs=1e-6)

    def test_zero_start_vector_rejected(self, rng):
        with pytest.raises(ShapeError):
            PowerIterationSolver(3).solve(np.eye(3), x0=np.zeros(3))

    def test_rectangular_rejected(self, rng):
        with pytest.raises(ShapeError):
            PowerIterationSolver(3).solve(rng.normal(size=(3, 4)))


class TestWarmPlanReuse:
    """The acceptance criterion: k sweeps, zero recompiles after the first."""

    def test_50_sweep_jacobi_n256_builds_zero_plans_after_first_sweep(self, rng):
        n, w, sweeps = 256, 8, 50
        matrix = spd_dominant(rng, n)
        b = rng.normal(size=n)
        solver = Solver(
            ArraySpec(w),
            options=ExecutionOptions(
                criteria=ConvergenceCriteria(atol=1e-280, max_iter=sweeps)
            ),
        )
        before = counters.snapshot()
        solution = solver.solve("jacobi", matrix, b)
        delta = counters.delta(before)

        assert solution.stats["iterations"] == sweeps
        assert delta.iterative_sweeps == sweeps
        # One plan compiled during the first sweep, none afterwards.
        assert solution.stats["plan_builds_first_sweep"] == 1
        assert solution.stats["plan_builds_warm_sweeps"] == 0
        cache = solution.stats["cache"]
        assert isinstance(cache, CacheStats)
        assert cache.misses == 1
        assert cache.hits == sweeps - 1
        assert cache.hit_rate > 0.97

    def test_iterative_result_protocol(self, rng):
        result = JacobiSolver(3).solve(spd_dominant(rng, 6), rng.normal(size=6))
        assert isinstance(result, IterativeResult)
        assert 0.0 <= result.residual_reduction <= 1.0
        text = result.summary()
        assert "jacobi" in text and "plan cache" in text


class TestRegistryIntegration:
    def test_kinds_registered(self):
        kinds = Solver.kinds()
        for kind in ("jacobi", "sor", "cg", "refine", "power"):
            assert kind in kinds

    def test_facade_solve_and_plan_cache(self, rng):
        matrix = spd_dominant(rng, 8)
        b = rng.normal(size=8)
        b2 = rng.normal(size=8)
        solver = Solver(ArraySpec(3))
        first = solver.solve("cg", matrix, b)
        assert not first.from_cache
        assert np.allclose(first.values, np.linalg.solve(matrix, b), atol=1e-8)
        before = counters.snapshot()
        second = solver.solve("cg", matrix, b2)
        assert second.from_cache  # same engine, warm inner plans
        assert counters.delta(before).plan_builds == 0
        assert np.allclose(second.values, np.linalg.solve(matrix, b2), atol=1e-8)

    def test_sor_omega_routes_through_options(self, rng):
        matrix = spd_dominant(rng, 8)
        b = rng.normal(size=8)
        solver = Solver(ArraySpec(3))
        relaxed = solver.solve("sor", matrix, b, options=ExecutionOptions(sor_omega=1.3))
        plain = solver.solve("sor", matrix, b)
        assert relaxed.plan_key != plain.plan_key  # omega is part of the key
        assert np.allclose(relaxed.values, np.linalg.solve(matrix, b), atol=1e-8)

    def test_power_through_facade(self, rng):
        matrix = spd_dominant(rng, 6)
        solution = Solver(ArraySpec(3)).solve("power", matrix)
        assert solution.stats["eigenvalue"] == pytest.approx(
            float(np.max(np.abs(np.linalg.eigvalsh(matrix)))), rel=1e-6
        )

    def test_criteria_participate_in_plan_key(self, rng):
        solver = Solver(ArraySpec(3))
        loose = solver.plan_key("jacobi", shape=8)
        tight = solver.plan_key(
            "jacobi",
            shape=8,
            options=ExecutionOptions(criteria=ConvergenceCriteria(atol=1e-14)),
        )
        assert loose != tight

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            ExecutionOptions(sor_omega=2.0)
        with pytest.raises(ValueError):
            ExecutionOptions(criteria="tight")  # type: ignore[arg-type]


class TestGaussSeidelShim:
    def test_warns_but_keeps_api(self, rng):
        from repro.extensions.gauss_seidel import SystolicGaussSeidel

        with pytest.warns(DeprecationWarning, match="SystolicGaussSeidel"):
            shim = SystolicGaussSeidel(3)
        matrix = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        result = shim.solve(matrix, b)
        assert result.converged
        assert np.allclose(matrix @ result.x, b, atol=1e-8)

    def test_gauss_seidel_kind_still_served(self, rng):
        matrix = spd_dominant(rng, 6)
        b = rng.normal(size=6)
        solution = Solver(ArraySpec(3)).solve("gauss_seidel", matrix, b)
        assert solution.stats["converged"]
        assert np.allclose(solution.values, np.linalg.solve(matrix, b), atol=1e-8)

    def test_divergence_reports_converged_false_like_the_seed(self, rng):
        """The shim (and kind) must never raise on divergence — even to inf."""
        from repro.extensions.gauss_seidel import SystolicGaussSeidel

        diverging = np.array([[1.0, 10.0], [10.0, 1.0]])
        b = np.ones(2)
        # The residual legitimately overflows to inf on the way to the
        # iteration cap; that arithmetic noise is the point of the test.
        with warnings.catch_warnings(), np.errstate(all="ignore"):
            warnings.simplefilter("ignore")
            result = SystolicGaussSeidel(3, max_iterations=300).solve(diverging, b)
            assert not result.converged
            assert result.iterations == 300
            solution = Solver(ArraySpec(3)).solve("gauss_seidel", diverging, b)
            assert not solution.stats["converged"]
