"""Integration-level tests of the size-independent matrix-vector pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matvec import MatVecSolution, SizeIndependentMatVec
from repro.errors import ShapeError


class TestCorrectness:
    @pytest.mark.parametrize(
        "n,m,w",
        [
            (6, 9, 3),   # the paper's running example
            (3, 3, 3),   # single block (the PRT case)
            (5, 7, 3),   # padding in both dimensions
            (1, 6, 2),   # a single row
            (7, 1, 2),   # a single column
            (8, 8, 4),
            (2, 2, 5),   # array larger than the problem
            (10, 4, 1),  # degenerate single-cell array
        ],
    )
    def test_matches_reference(self, rng, n, m, w):
        matrix = rng.uniform(-1.0, 1.0, size=(n, m))
        x = rng.uniform(-1.0, 1.0, size=m)
        b = rng.uniform(-1.0, 1.0, size=n)
        solution = SizeIndependentMatVec(w).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)

    def test_without_bias(self, rng):
        matrix = rng.uniform(size=(4, 6))
        x = rng.uniform(size=6)
        solution = SizeIndependentMatVec(3).solve(matrix, x)
        assert np.allclose(solution.y, matrix @ x)

    def test_special_matrices(self, rng):
        x = rng.uniform(size=6)
        identity = np.eye(6)
        assert np.allclose(SizeIndependentMatVec(3).solve(identity, x).y, x)
        zeros = np.zeros((6, 6))
        assert np.allclose(SizeIndependentMatVec(3).solve(zeros, x).y, 0.0)

    def test_shape_validation(self, rng):
        solver = SizeIndependentMatVec(3)
        with pytest.raises(ShapeError):
            solver.solve(rng.uniform(size=(3, 4)), rng.uniform(size=3))
        with pytest.raises(ShapeError):
            solver.solve(rng.uniform(size=(3, 4)), rng.uniform(size=4), rng.uniform(size=2))


class TestTimingAgainstPaper:
    @pytest.mark.parametrize("n,m,w", [(6, 9, 3), (8, 8, 4), (9, 12, 3), (5, 5, 5)])
    def test_measured_steps_equal_t1(self, rng, n, m, w):
        matrix = rng.uniform(size=(n, m))
        x = rng.uniform(size=m)
        solution = SizeIndependentMatVec(w).solve(matrix, x)
        assert solution.measured_steps == solution.predicted_steps

    @pytest.mark.parametrize("n,m,w", [(6, 9, 3), (8, 8, 4), (12, 6, 3)])
    def test_measured_utilization_equals_t2(self, rng, n, m, w):
        matrix = rng.uniform(size=(n, m))
        x = rng.uniform(size=m)
        solution = SizeIndependentMatVec(w).solve(matrix, x)
        assert solution.measured_utilization == pytest.approx(
            solution.predicted_utilization
        )

    def test_feedback_delay_is_w(self, rng):
        for w in (2, 3, 4):
            matrix = rng.uniform(size=(2 * w, 3 * w))
            x = rng.uniform(size=3 * w)
            solution = SizeIndependentMatVec(w).solve(matrix, x)
            delays = solution.feedback_delays
            assert delays, "multi-block problems must use feedback"
            assert set(delays) == {w}

    def test_single_block_column_needs_no_feedback(self, rng):
        matrix = rng.uniform(size=(9, 3))
        x = rng.uniform(size=3)
        solution = SizeIndependentMatVec(3).solve(matrix, x)
        assert solution.feedback_delays == []

    def test_trace_recording(self, rng):
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        solution = SizeIndependentMatVec(3, record_trace=True).solve(matrix, x)
        assert solution.trace is not None
        assert solution.trace.total_cycles >= solution.measured_steps
        # The x input row carries 20 values (Fig. 3).
        assert len(solution.trace.rows["x in"]) == 20

    def test_summary_mentions_measured_and_paper_values(self, rng):
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        solution = SizeIndependentMatVec(3).solve(matrix, x)
        text = solution.summary()
        assert "39" in text
        assert "measured" in text


class TestOverlappedPipeline:
    @pytest.mark.parametrize("n,m,w", [(6, 9, 3), (8, 8, 4), (12, 5, 3), (7, 7, 3)])
    def test_overlapped_matches_reference(self, rng, n, m, w):
        matrix = rng.uniform(size=(n, m))
        x = rng.uniform(size=m)
        b = rng.uniform(size=n)
        solution = SizeIndependentMatVec(w, overlapped=True).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)
        assert solution.overlapped
        assert len(solution.transforms) == 2

    def test_overlapped_steps_match_t1_for_even_block_rows(self, rng):
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        solution = SizeIndependentMatVec(3, overlapped=True).solve(matrix, x)
        assert solution.measured_steps == solution.predicted_steps == 22

    def test_overlapped_utilization_approaches_one(self, rng):
        matrix = rng.uniform(size=(24, 24))
        x = rng.uniform(size=24)
        solution = SizeIndependentMatVec(3, overlapped=True).solve(matrix, x)
        assert solution.measured_utilization > 0.85

    def test_overlapped_beats_plain_utilization(self, rng):
        matrix = rng.uniform(size=(12, 12))
        x = rng.uniform(size=12)
        plain = SizeIndependentMatVec(3).solve(matrix, x)
        overlapped = SizeIndependentMatVec(3, overlapped=True).solve(matrix, x)
        assert overlapped.measured_utilization > 1.7 * plain.measured_utilization

    def test_solution_type(self, rng):
        matrix = rng.uniform(size=(6, 6))
        x = rng.uniform(size=6)
        solution = SizeIndependentMatVec(3).solve(matrix, x)
        assert isinstance(solution, MatVecSolution)
        assert solution.w == 3
        assert not solution.overlapped
