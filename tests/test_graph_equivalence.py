"""Cross-API equivalence: every typed problem == its string-kind call.

The redesign's compatibility contract: for every kind with a typed
problem class, solving the typed object must be **bit-identical** to the
legacy string-kind call — same values, same plan key, same cache
behaviour — across a grid of problem shapes, array sizes and execution
backends.  The typed path goes through ``Solver.solve_problem`` /
``ProblemHandler.execute_problem``; the string path through the shim;
both must land on the same compiled plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.graph import (
    CG,
    LU,
    Jacobi,
    MatMul,
    MatVec,
    Power,
    Refine,
    SOR,
    Sparse,
    Triangular,
)
from repro.iterative import ConvergenceCriteria

BACKENDS = ("simulate", "vectorized")
CRITERIA = ConvergenceCriteria(atol=1e-12, max_iter=8)


def _spd(rng, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    return matrix + (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)


def _pair(w: int, backend: str):
    """Two fresh solvers (typed / string) with identical configuration."""
    options = ExecutionOptions(backend=backend, criteria=CRITERIA)
    return Solver(ArraySpec(w), options=options), Solver(
        ArraySpec(w), options=options
    )


def _values_equal(lhs, rhs) -> bool:
    if isinstance(lhs, tuple):
        return all(
            np.array_equal(left, right) for left, right in zip(lhs, rhs)
        )
    return np.array_equal(lhs, rhs)


def _assert_equivalent(typed_solver, string_solver, problem, kind, *operands, **kwargs):
    typed = typed_solver.solve(problem)
    legacy = string_solver.solve(kind, *operands, **kwargs)
    assert typed.kind == legacy.kind == kind
    assert _values_equal(typed.values, legacy.values)
    assert typed.measured_steps == legacy.measured_steps
    assert typed.plan_key == legacy.plan_key
    # Warm re-solves hit the cache identically on both paths.
    again = typed_solver.solve(problem)
    assert again.from_cache
    assert _values_equal(again.values, typed.values)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("w", (3, 4))
class TestTypedStringEquivalence:
    @pytest.mark.parametrize("shape", ((6, 9), (7, 5), (8, 8)))
    def test_matvec(self, rng, w, backend, shape):
        typed_solver, string_solver = _pair(w, backend)
        matrix = rng.normal(size=shape)
        x = rng.normal(size=shape[1])
        b = rng.normal(size=shape[0])
        _assert_equivalent(
            typed_solver, string_solver, MatVec(matrix, x, b),
            "matvec", matrix, x, b,
        )

    @pytest.mark.parametrize("shape", ((4, 5, 7), (6, 6, 6)))
    def test_matmul(self, rng, w, backend, shape):
        typed_solver, string_solver = _pair(w, backend)
        n, p, m = shape
        a = rng.normal(size=(n, p))
        b = rng.normal(size=(p, m))
        e = rng.normal(size=(n, m))
        _assert_equivalent(
            typed_solver, string_solver, MatMul(a, b, e), "matmul", a, b, e
        )

    @pytest.mark.parametrize("n", (6, 9))
    @pytest.mark.parametrize("lower", (True, False))
    def test_triangular(self, rng, w, backend, n, lower):
        typed_solver, string_solver = _pair(w, backend)
        factor = np.tril(rng.normal(size=(n, n))) + n * np.eye(n)
        matrix = factor if lower else factor.T
        b = rng.normal(size=n)
        _assert_equivalent(
            typed_solver, string_solver, Triangular(matrix, b, lower=lower),
            "triangular", matrix, b, lower=lower,
        )

    @pytest.mark.parametrize("n", (6, 9))
    def test_lu(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix = _spd(rng, n)
        _assert_equivalent(typed_solver, string_solver, LU(matrix), "lu", matrix)

    @pytest.mark.parametrize("n", (6, 8))
    def test_jacobi(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix, b = _spd(rng, n), rng.normal(size=n)
        _assert_equivalent(
            typed_solver, string_solver, Jacobi(matrix, b), "jacobi", matrix, b
        )

    @pytest.mark.parametrize("n", (6, 8))
    def test_sor_with_omega_override(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix, b = _spd(rng, n), rng.normal(size=n)
        typed = typed_solver.solve(SOR(matrix, b, omega=1.4))
        legacy = string_solver.solve(
            "sor", matrix, b,
            options=ExecutionOptions(
                backend=backend, criteria=CRITERIA, sor_omega=1.4
            ),
        )
        assert np.array_equal(typed.values, legacy.values)
        assert typed.plan_key == legacy.plan_key

    @pytest.mark.parametrize("n", (6, 8))
    def test_cg(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix, b = _spd(rng, n), rng.normal(size=n)
        _assert_equivalent(
            typed_solver, string_solver, CG(matrix, b), "cg", matrix, b
        )

    @pytest.mark.parametrize("n", (6, 8))
    def test_refine(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix, b = _spd(rng, n), rng.normal(size=n)
        _assert_equivalent(
            typed_solver, string_solver, Refine(matrix, b), "refine", matrix, b
        )

    @pytest.mark.parametrize("n", (6, 8))
    def test_power_with_start_vector(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix = _spd(rng, n)
        x0 = rng.normal(size=n)
        _assert_equivalent(
            typed_solver, string_solver, Power(matrix, x0),
            "power", matrix, x0=x0,
        )

    @pytest.mark.parametrize("n", (8, 12))
    def test_sparse_with_tolerance_override(self, rng, w, backend, n):
        typed_solver, string_solver = _pair(w, backend)
        matrix = rng.normal(size=(n, n))
        matrix[: n // 2, : n // 2] = 0.0
        x = rng.normal(size=n)
        typed = typed_solver.solve(Sparse(matrix, x, tolerance=1e-9))
        legacy = string_solver.solve(
            "sparse", matrix, x,
            options=ExecutionOptions(
                backend=backend, criteria=CRITERIA, sparse_tolerance=1e-9
            ),
        )
        assert np.array_equal(typed.values, legacy.values)
        assert typed.plan_key == legacy.plan_key
