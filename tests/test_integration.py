"""End-to-end integration tests crossing module boundaries.

These tests tie the whole stack together the way the paper's system would
be used: dense problems of awkward sizes flowing through transformation,
cycle-accurate simulation with feedback, and recovery — and the measured
quantities being compared against the closed forms and against the
baseline strategies, all in one scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import ExperimentReport
from repro.baselines.block_partition import BlockPartitionedMatVec
from repro.baselines.naive_band import NaiveBlockMatVec
from repro.core.analytic import MatVecModel, matmul_steps, matvec_steps
from repro.core.matmul import SizeIndependentMatMul
from repro.core.matvec import SizeIndependentMatVec
from repro.extensions.gauss_seidel import SystolicGaussSeidel
from repro.extensions.lu import SystolicLU
from repro.matrices.padding import block_count


class TestPaperRunningExample:
    """The n=6, m=9, w=3 example that Figs. 2 and 3 are built on."""

    def test_full_story(self, rng, paper_example_problem):
        matrix, x, b = paper_example_problem
        solver = SizeIndependentMatVec(3, record_trace=True)
        solution = solver.solve(matrix, x, b)

        # Numerical correctness.
        assert np.allclose(solution.y, matrix @ x + b)
        # 39 computation steps, exactly as Fig. 3 shows.
        assert solution.measured_steps == 39
        # The x stream carries 20 values: x twice plus the first two elements.
        assert len(solution.trace.rows["x in"]) == 20
        # 12 partial results are fed back (block rows 1, 2, 4, 5), each after
        # exactly w = 3 cycles.
        assert len(solution.feedback_delays) == 12
        assert set(solution.feedback_delays) == {3}
        # Utilization matches the closed form and is below the 1/2 limit.
        assert solution.measured_utilization == pytest.approx(
            solution.predicted_utilization
        )
        assert solution.measured_utilization < 0.5

    def test_overlapped_variant_fills_the_idle_cycles(self, rng, paper_example_problem):
        matrix, x, b = paper_example_problem
        plain = SizeIndependentMatVec(3).solve(matrix, x, b)
        overlapped = SizeIndependentMatVec(3, overlapped=True).solve(matrix, x, b)
        assert np.allclose(overlapped.y, plain.y)
        assert overlapped.measured_steps == 22
        assert overlapped.measured_utilization > 0.8


class TestCrossStrategyComparison:
    def test_dbt_dominates_both_baselines(self, rng):
        matrix = rng.uniform(-1, 1, size=(12, 15))
        x = rng.uniform(-1, 1, size=15)
        b = rng.uniform(-1, 1, size=12)

        dbt = SizeIndependentMatVec(3).solve(matrix, x, b)
        naive = NaiveBlockMatVec(3).solve(matrix, x, b)
        partitioned = BlockPartitionedMatVec(3).solve(matrix, x, b)

        for result in (dbt.y, naive.result, partitioned.result):
            assert np.allclose(result, matrix @ x + b)

        # DBT needs the smallest array, performs no external additions and
        # achieves the highest utilization.
        assert dbt.w <= partitioned.processing_elements < naive.processing_elements
        assert dbt.measured_utilization > partitioned.utilization
        assert dbt.measured_utilization > naive.utilization
        assert naive.external_additions > 0 and partitioned.external_additions > 0


class TestScalingBehaviour:
    def test_matvec_utilization_approaches_half(self, rng):
        utilizations = []
        for blocks in (1, 3, 6):
            n = m = 3 * blocks
            matrix = rng.uniform(size=(n, m))
            x = rng.uniform(size=m)
            solution = SizeIndependentMatVec(3).solve(matrix, x)
            utilizations.append(solution.measured_utilization)
        assert utilizations == sorted(utilizations)
        assert utilizations[-1] > 0.45

    def test_matmul_utilization_approaches_one_third(self, rng):
        utilizations = []
        for blocks in (1, 2, 3):
            size = 3 * blocks
            a = rng.uniform(size=(size, size))
            b = rng.uniform(size=(size, size))
            solution = SizeIndependentMatMul(3).solve(a, b)
            utilizations.append(solution.measured_utilization)
        assert utilizations[-1] > 0.3
        assert abs(utilizations[-1] - 1.0 / 3.0) < abs(utilizations[0] - 1.0 / 3.0)

    def test_step_counts_scale_linearly_in_block_count(self, rng):
        w = 3
        for n, m in [(6, 6), (6, 12), (12, 12)]:
            matrix = rng.uniform(size=(n, m))
            x = rng.uniform(size=m)
            solution = SizeIndependentMatVec(w).solve(matrix, x)
            n_bar, m_bar = block_count(n, w), block_count(m, w)
            assert solution.measured_steps == matvec_steps(n_bar, m_bar, w)


class TestApplicationsOnTopOfThePipelines:
    def test_linear_solver_stack(self, rng):
        """LU factorization + triangular solves reproduce a dense solve."""
        n = 9
        matrix = rng.uniform(-1, 1, size=(n, n))
        np.fill_diagonal(matrix, n + np.abs(matrix).sum(axis=1))
        b = rng.uniform(-1, 1, size=n)

        lu = SystolicLU(3)
        factorization = lu.factor(matrix)
        assert factorization.residual(matrix) < 1e-8

        gs = SystolicGaussSeidel(3, tolerance=1e-11).solve(matrix, b)
        assert gs.converged
        direct = np.linalg.solve(matrix, b)
        assert np.allclose(gs.x, direct, atol=1e-8)

    def test_report_assembly_for_a_small_sweep(self, rng):
        """The reporting helper consumes measured data from real runs."""
        report = ExperimentReport("T1", "matrix-vector time formula")
        for n, m, w in [(6, 9, 3), (8, 8, 4), (10, 5, 5)]:
            matrix = rng.uniform(size=(n, m))
            x = rng.uniform(size=m)
            solution = SizeIndependentMatVec(w).solve(matrix, x)
            report.add(f"T(n={n}, m={m}, w={w})", solution.predicted_steps, solution.measured_steps)
        assert report.all_match
        model = MatVecModel(n=6, m=9, w=3)
        assert report.rows[0].paper == model.steps

    def test_matmul_report(self, rng):
        report = ExperimentReport("T5", "matrix-matrix time formula")
        for n, p, m, w in [(6, 6, 6, 3), (4, 4, 4, 2)]:
            a = rng.uniform(size=(n, p))
            b = rng.uniform(size=(p, m))
            solution = SizeIndependentMatMul(w).solve(a, b)
            expected = matmul_steps(
                block_count(n, w), block_count(p, w), block_count(m, w), w
            )
            report.add(f"T(n={n}, p={p}, m={m}, w={w})", expected, solution.measured_steps)
        assert report.all_match
