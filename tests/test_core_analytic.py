"""Unit tests for the closed-form models of Sections 2 and 3."""

from __future__ import annotations

import pytest

from repro.core.analytic import (
    MatMulModel,
    MatVecModel,
    matmul_irregular_delay_first_row,
    matmul_irregular_delay_wraparound,
    matmul_irregular_feedback_registers,
    matmul_regular_feedback_registers,
    matmul_steps,
    matmul_utilization,
    matmul_utilization_limit,
    matvec_feedback_delay,
    matvec_feedback_registers,
    matvec_steps,
    matvec_utilization,
    matvec_utilization_limit,
)


class TestMatVecFormulas:
    def test_paper_example_steps(self):
        # n=6, m=9, w=3: n_bar*m_bar = 6 and T = 2*3*6 + 2*3 - 3 = 39 (Fig. 3).
        assert matvec_steps(2, 3, 3) == 39

    def test_overlapped_steps(self):
        assert matvec_steps(2, 3, 3, overlapped=True) == 3 * 6 + 2 * 3 - 2 == 22

    def test_utilization_consistent_with_steps(self):
        # eta == (n_bar m_bar w^2) / (w T) == n_bar m_bar w / T by construction.
        for n_bar, m_bar, w in [(2, 3, 3), (4, 4, 5), (1, 1, 3), (7, 2, 4)]:
            steps = matvec_steps(n_bar, m_bar, w)
            expected = (w * n_bar * m_bar) / steps
            assert matvec_utilization(n_bar, m_bar, w) == pytest.approx(expected)

    def test_overlapped_utilization_consistent_with_steps(self):
        for n_bar, m_bar, w in [(2, 3, 3), (4, 4, 5), (6, 1, 2)]:
            steps = matvec_steps(n_bar, m_bar, w, overlapped=True)
            expected = (w * n_bar * m_bar) / steps
            assert matvec_utilization(n_bar, m_bar, w, overlapped=True) == pytest.approx(
                expected
            )

    def test_limits(self):
        assert matvec_utilization_limit() == 0.5
        assert matvec_utilization_limit(overlapped=True) == 1.0
        # Large problems approach the limits.
        assert matvec_utilization(100, 100, 8) == pytest.approx(0.5, abs=1e-3)
        assert matvec_utilization(100, 100, 8, overlapped=True) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_feedback_constants(self):
        assert matvec_feedback_delay(7) == 7
        assert matvec_feedback_registers(7) == 7

    def test_input_validation(self):
        with pytest.raises(ValueError):
            matvec_steps(0, 1, 3)
        with pytest.raises(ValueError):
            matvec_utilization(1, -1, 3)


class TestMatMulFormulas:
    def test_steps_formula(self):
        assert matmul_steps(2, 2, 3, 3) == 3 * 3 * 2 * 2 * 3 + 4 * 3 - 5

    def test_utilization_consistent_with_steps(self):
        for n_bar, p_bar, m_bar, w in [(2, 2, 3, 3), (1, 1, 1, 4), (3, 2, 2, 5)]:
            steps = matmul_steps(n_bar, p_bar, m_bar, w)
            expected = (w * n_bar * p_bar * m_bar) / steps
            assert matmul_utilization(n_bar, p_bar, m_bar, w) == pytest.approx(expected)

    def test_limit(self):
        assert matmul_utilization_limit() == pytest.approx(1.0 / 3.0)
        assert matmul_utilization(50, 50, 50, 6) == pytest.approx(1.0 / 3.0, abs=1e-4)

    def test_feedback_register_counts(self):
        assert matmul_regular_feedback_registers(3) == 2 * 3 + 2 * 3
        assert matmul_irregular_feedback_registers(3) == 9
        assert matmul_irregular_feedback_registers(1) == 0

    def test_irregular_delay_formulas(self):
        assert matmul_irregular_delay_first_row(2, 2, 3) == 6 * 2 * 1 * 2 + 3
        assert matmul_irregular_delay_wraparound(2, 2, 3, 3) == 6 * 4 * 2 * 2 + 3

    def test_input_validation(self):
        with pytest.raises(ValueError):
            matmul_steps(1, 0, 1, 3)


class TestModels:
    def test_matvec_model_bundles_formulas(self):
        model = MatVecModel(n=6, m=9, w=3)
        assert (model.n_bar, model.m_bar) == (2, 3)
        assert model.steps == 39
        assert model.processing_elements == 3
        assert model.feedback_delay == 3
        assert model.feedback_registers == 3
        assert model.utilization == matvec_utilization(2, 3, 3)
        assert model.utilization_limit == 0.5

    def test_matvec_model_overlapped(self):
        model = MatVecModel(n=6, m=9, w=3, overlapped=True)
        assert model.steps == 22
        assert model.utilization_limit == 1.0

    def test_matvec_model_rounds_up_blocks(self):
        model = MatVecModel(n=7, m=10, w=3)
        assert (model.n_bar, model.m_bar) == (3, 4)

    def test_matmul_model_bundles_formulas(self):
        model = MatMulModel(n=6, p=6, m=9, w=3)
        assert (model.n_bar, model.p_bar, model.m_bar) == (2, 2, 3)
        assert model.steps == matmul_steps(2, 2, 3, 3)
        assert model.processing_elements == 9
        assert model.regular_feedback_registers == matmul_regular_feedback_registers(3)
        assert model.irregular_feedback_registers == 9
        assert model.utilization_limit == pytest.approx(1.0 / 3.0)
