"""Tests of the public package surface and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import errors


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "ShapeError",
            "BandwidthError",
            "ArraySizeError",
            "TransformError",
            "ScheduleError",
            "FeedbackError",
            "SimulationError",
            "RecoveryError",
        ):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError)

    def test_value_error_compatibility(self):
        # Shape-ish configuration errors double as ValueError so that callers
        # using plain numpy idioms can catch them without importing repro.
        assert issubclass(errors.ShapeError, ValueError)
        assert issubclass(errors.BandwidthError, ValueError)
        assert issubclass(errors.ArraySizeError, ValueError)

    def test_feedback_error_is_a_schedule_error(self):
        assert issubclass(errors.FeedbackError, errors.ScheduleError)

    def test_single_except_clause_catches_everything(self):
        with pytest.raises(errors.ReproError):
            repro.BandMatrix(3, 3, lower=0, upper=0).set(2, 0, 1.0)


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.1.0"

    def test_version_matches_package_metadata(self):
        import pathlib
        import re

        pyproject = pathlib.Path(__file__).parent.parent / "pyproject.toml"
        declared = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        assert declared is not None
        assert repro.__version__ == declared.group(1)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_from_module_docstring(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(10, 7))
        x = np.random.default_rng(1).normal(size=7)
        solution = repro.SizeIndependentMatVec(w=4).solve(matrix, x)
        assert np.allclose(solution.y, matrix @ x)

    def test_top_level_classes_are_the_same_objects(self):
        from repro.core.matvec import SizeIndependentMatVec as Inner

        assert repro.SizeIndependentMatVec is Inner
