"""Unit tests for the Section 4 applications in ``repro.extensions``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.extensions.gauss_seidel import SystolicGaussSeidel
from repro.extensions.lu import SystolicLU
from repro.extensions.triangular import SystolicTriangularSolver


def lower_triangular(rng, n, dominance=3.0):
    matrix = np.tril(rng.uniform(0.5, 1.5, size=(n, n)))
    np.fill_diagonal(matrix, dominance + rng.uniform(0.5, 1.0, size=n))
    return matrix


def diagonally_dominant(rng, n, dominance=None):
    matrix = rng.uniform(-1.0, 1.0, size=(n, n))
    strength = dominance if dominance is not None else n
    np.fill_diagonal(matrix, strength + np.abs(matrix).sum(axis=1))
    return matrix


class TestTriangularSolver:
    @pytest.mark.parametrize("n,w", [(4, 2), (8, 3), (9, 3), (7, 4)])
    def test_lower_solve(self, rng, n, w):
        matrix = lower_triangular(rng, n)
        b = rng.uniform(-1.0, 1.0, size=n)
        result = SystolicTriangularSolver(w).solve_lower(matrix, b)
        assert np.allclose(matrix @ result.x, b)
        assert result.residual_norm < 1e-8

    @pytest.mark.parametrize("n,w", [(4, 2), (8, 3), (6, 3)])
    def test_upper_solve(self, rng, n, w):
        matrix = lower_triangular(rng, n).T
        b = rng.uniform(-1.0, 1.0, size=n)
        result = SystolicTriangularSolver(w).solve_upper(matrix, b)
        assert np.allclose(matrix @ result.x, b)

    def test_array_carries_off_diagonal_work(self, rng):
        matrix = lower_triangular(rng, 12)
        b = rng.uniform(size=12)
        result = SystolicTriangularSolver(3).solve_lower(matrix, b)
        assert result.matvec_calls == 3  # one per block row after the first
        assert result.array_operations > 0
        assert 0.0 < result.array_share < 1.0

    def test_array_share_grows_with_problem_size(self, rng):
        small = SystolicTriangularSolver(3).solve_lower(
            lower_triangular(rng, 6), rng.uniform(size=6)
        )
        large = SystolicTriangularSolver(3).solve_lower(
            lower_triangular(rng, 18), rng.uniform(size=18)
        )
        assert large.array_share > small.array_share

    def test_validation(self, rng):
        solver = SystolicTriangularSolver(3)
        with pytest.raises(ShapeError):
            solver.solve_lower(rng.uniform(size=(3, 4)), rng.uniform(size=3))
        with pytest.raises(ShapeError):
            solver.solve_lower(lower_triangular(rng, 4), rng.uniform(size=3))
        singular = np.tril(rng.uniform(size=(3, 3)))
        singular[1, 1] = 0.0
        with pytest.raises(ShapeError):
            solver.solve_lower(singular, rng.uniform(size=3))


class TestGaussSeidel:
    def test_converges_on_diagonally_dominant_system(self, rng):
        matrix = diagonally_dominant(rng, 8)
        b = rng.uniform(-1.0, 1.0, size=8)
        result = SystolicGaussSeidel(3, tolerance=1e-10).solve(matrix, b)
        assert result.converged
        assert np.allclose(matrix @ result.x, b, atol=1e-8)
        assert result.residual_history[-1] <= result.residual_history[0]

    def test_respects_initial_guess(self, rng):
        matrix = diagonally_dominant(rng, 6)
        b = rng.uniform(size=6)
        exact = np.linalg.solve(matrix, b)
        result = SystolicGaussSeidel(3).solve(matrix, b, x0=exact)
        assert result.iterations == 1
        assert result.converged

    def test_iteration_cap(self, rng):
        matrix = diagonally_dominant(rng, 6, dominance=1.0)
        b = rng.uniform(size=6)
        result = SystolicGaussSeidel(3, tolerance=1e-16, max_iterations=2).solve(matrix, b)
        assert result.iterations == 2
        assert not result.converged

    def test_counts_array_steps(self, rng):
        matrix = diagonally_dominant(rng, 6)
        b = rng.uniform(size=6)
        result = SystolicGaussSeidel(3).solve(matrix, b)
        assert result.array_steps > 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            SystolicGaussSeidel(3, tolerance=0.0)
        with pytest.raises(ValueError):
            SystolicGaussSeidel(3, max_iterations=0)
        solver = SystolicGaussSeidel(3)
        with pytest.raises(ShapeError):
            solver.solve(rng.uniform(size=(3, 4)), rng.uniform(size=3))
        with pytest.raises(ShapeError):
            solver.solve(diagonally_dominant(rng, 4), rng.uniform(size=3))
        zero_diag = rng.uniform(size=(3, 3))
        zero_diag[0, 0] = 0.0
        with pytest.raises(ShapeError):
            solver.solve(zero_diag, rng.uniform(size=3))


class TestLU:
    @pytest.mark.parametrize("n,w", [(4, 2), (6, 3), (9, 3), (8, 4)])
    def test_factorization_reconstructs_matrix(self, rng, n, w):
        matrix = diagonally_dominant(rng, n)
        result = SystolicLU(w).factor(matrix)
        assert result.residual(matrix) < 1e-8
        assert np.allclose(np.triu(result.l, 1), 0.0)
        assert np.allclose(np.tril(result.u, -1), 0.0)
        assert np.allclose(np.diag(result.l), 1.0)

    def test_trailing_updates_run_on_the_array(self, rng):
        matrix = diagonally_dominant(rng, 9)
        result = SystolicLU(3).factor(matrix)
        assert result.update_calls == 2
        assert result.array_operations > 0
        assert result.array_share > 0.3

    def test_single_block_factorization_is_host_only(self, rng):
        matrix = diagonally_dominant(rng, 3)
        result = SystolicLU(3).factor(matrix)
        assert result.update_calls == 0
        assert result.array_operations == 0

    def test_zero_pivot_detected(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ShapeError):
            SystolicLU(2).factor(matrix)

    def test_triangular_inverse(self, rng):
        matrix = np.tril(rng.uniform(0.5, 1.5, size=(6, 6)))
        np.fill_diagonal(matrix, 3.0)
        result = SystolicLU(3).invert_triangular(matrix, lower=True)
        assert np.allclose(result.inverse @ matrix, np.eye(6), atol=1e-8)

    def test_dense_inverse(self, rng):
        matrix = diagonally_dominant(rng, 6)
        result = SystolicLU(3).invert(matrix)
        assert np.allclose(result.inverse @ matrix, np.eye(6), atol=1e-7)
        assert result.array_share > 0.0

    def test_validation(self, rng):
        with pytest.raises(ShapeError):
            SystolicLU(2).factor(rng.uniform(size=(3, 4)))
