"""Whole-pipeline jobs through the serving layer.

Acceptance: the 3-stage pipeline (matmul → matvec → refine) executes
through ``SolverService`` bit-identically to stage-by-stage ``Solver``
calls, re-submitted same-shaped graphs run shard-local with **zero** plan
builds after warmup, graph requests carry per-graph telemetry (stage
counts, fused stages, stage latencies) into the fleet snapshot, and a
failing graph resolves only its own future.

The cross-shard pipelined path adds its own criteria: a two-branch
diamond with pinned branch placement executes bit-identically to
single-shard :meth:`PipelineProgram.run` while its modeled array-step
makespan shows ≥1.5x level parallelism, and graph jobs under
backpressure (deadlines, ``shed_oldest``, ``reject``) fail whole —
no orphaned segments, no leaked handoff slots.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.errors import (
    DeadlineExceededError,
    GraphCycleError,
    ServiceOverloadedError,
    ShapeError,
)
from repro.graph import (
    Graph,
    GraphCompiler,
    Jacobi,
    MatMul,
    MatVec,
    ProgramSegment,
    Ref,
    Refine,
)
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria
from repro.nn import Bias, Relu
from repro.service import SolverService

W = 4
N = 8


def _spd(rng, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    return matrix + (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)


@pytest.fixture
def pipeline(rng):
    """The acceptance pipeline: matmul -> matvec -> refine, plus operands."""
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    z = rng.normal(size=N)
    matrix = _spd(rng, N)
    product = MatMul(a, b, name="product")
    projected = MatVec(product, z, name="projected")
    refined = Refine(matrix, projected, name="refined")
    return Graph(refined), (a, b, z, matrix)


class TestServiceGraphs:
    def test_three_stage_pipeline_bit_identical_to_solver(self, pipeline):
        graph, (a, b, z, matrix) = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            result = service.solve_graph(graph)
        reference = Solver(ArraySpec(W))
        c = reference.solve("matmul", a, b).values
        y = reference.solve("matvec", c, z).values
        x = reference.solve("refine", matrix, y).values
        assert np.array_equal(result.output("refined"), x)
        assert np.array_equal(result["product"].values, c)
        assert np.array_equal(result["projected"].values, y)

    def test_warm_resubmission_reports_zero_plan_builds(self, pipeline):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            cold = service.solve_graph(graph)
            assert not cold.warm
            before = counters.snapshot()
            results = [service.solve_graph(graph) for _ in range(5)]
            delta = counters.delta(before)
            stats = service.stats()
        # Every re-submission landed on the home shard's warm plans: the
        # graph executed with zero plan or transform construction.
        assert delta.plan_builds == 0
        assert delta.transform_constructions == 0
        for warm in results:
            assert warm.warm
            assert warm.plan_builds == 0 and warm.compile_plan_builds == 0
            assert np.array_equal(
                warm.output("refined"), cold.output("refined")
            )
        assert stats.graphs == 6

    def test_same_graph_routes_to_one_home_shard(self, pipeline):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            for _ in range(4):
                service.solve_graph(graph)
            stats = service.stats()
        homes = [shard for shard in stats.shards if shard.graphs]
        assert len(homes) == 1
        assert homes[0].graphs == 4

    def test_graph_telemetry_reaches_fleet_snapshot(self, pipeline, rng):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=2) as service:
            service.solve_graph(graph)
            # A second, pairable graph: two independent same-shape matvecs.
            a, b = rng.normal(size=(N, N)), rng.normal(size=(N, N))
            x = rng.normal(size=N)
            paired = Graph(
                MatVec(a, x, name="left"), MatVec(b, x, name="right")
            )
            service.solve_graph(paired)
            stats = service.stats()
        assert stats.graphs == 2
        assert stats.graph_stages == 5
        assert stats.graph_fused == 1  # the left/right overlapped pair
        assert stats.stage_latency_p50 is not None
        described = stats.describe()
        assert "pipelines:" in described
        assert "2 graph(s), 5 stage(s), 1 fused" in described
        home = [shard for shard in stats.shards if shard.graphs]
        assert "pipeline" in home[0].describe()

    def test_fused_submission_shares_home_shard_and_converges(self, pipeline):
        graph, (a, b, z, _matrix) = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            plain = service.solve_graph(graph)
            fused = service.solve_graph(graph, fuse=True)
            stats = service.stats()
        assert fused.fused_rewrites == 1
        assert np.allclose(
            fused.output("refined"), plain.output("refined")
        )
        homes = [shard for shard in stats.shards if shard.graphs]
        assert len(homes) == 1  # routing uses the unfused stage keys

    def test_per_request_options_reach_graph_execution(self, pipeline):
        """Regression: submit_graph's options must govern execution (and
        hence match the routing keys), not just the shard routing."""
        from repro.api import ExecutionOptions
        from repro.iterative import ConvergenceCriteria

        graph, _operands = pipeline
        capped = ExecutionOptions(
            criteria=ConvergenceCriteria(atol=1e-300, max_iter=1)
        )
        with SolverService(ArraySpec(W), n_shards=2) as service:
            default_run = service.solve_graph(graph)
            capped_run = service.solve_graph(graph, options=capped)
            warm = service.solve_graph(graph, options=capped)
        assert capped_run["refined"].stats["iterations"] == 1
        assert default_run["refined"].stats["iterations"] > 1
        # The option-carrying graph keeps the zero-recompile guarantee.
        assert warm.warm

    def test_invalid_graphs_fail_synchronously_at_submit(self, rng):
        a = rng.normal(size=(N, N))
        x = rng.normal(size=N)
        first = MatVec(a, x)
        second = MatVec(a, first)
        first.x = Ref(second)  # cycle
        with SolverService(ArraySpec(W), n_shards=2) as service:
            with pytest.raises(GraphCycleError):
                service.submit_graph(second)
            with pytest.raises(ShapeError):
                service.submit_graph(
                    MatVec(rng.normal(size=(4, 6)), MatVec(a, x))
                )
            # The service stays healthy for well-formed work.
            ok = service.solve(MatVec(a, x))
        assert ok.kind == "matvec"

    def test_failing_graph_resolves_only_its_own_future(self, pipeline, rng):
        graph, _operands = pipeline
        # Build-time checks cannot see a singular diagonal: jacobi's
        # nonzero-diagonal requirement only surfaces at execution, inside
        # the home shard, and must stay isolated to the failing request.
        from repro.graph import Jacobi

        singular = np.ones((N, N)) - np.eye(N) * 0.0
        singular[0, 0] = 0.0
        bad = Graph(Jacobi(singular, rng.normal(size=N)))
        with SolverService(ArraySpec(W), n_shards=2) as service:
            bad_future = service.submit_graph(bad)
            good = service.solve_graph(graph)
            with pytest.raises(ShapeError, match="diagonal"):
                bad_future.result()
            stats = service.stats()
        assert good.output("refined") is not None
        assert stats.failed == 1
        assert stats.completed >= 1

    def test_mixed_typed_and_graph_load_across_clients(self, pipeline, rng):
        """A small soak: graphs, typed solves and string solves interleaved."""
        import threading

        graph, (a, b, z, matrix) = pipeline
        reference = Solver(ArraySpec(W))
        expected_y = reference.solve(
            "matvec", reference.solve("matmul", a, b).values, z
        ).values
        expected_mv = reference.solve("matvec", a, z).values
        failures = []

        def client(index: int, service: SolverService) -> None:
            try:
                for round_index in range(5):
                    if (index + round_index) % 2:
                        result = service.solve_graph(graph)
                        assert np.array_equal(
                            result["projected"].values, expected_y
                        )
                    else:
                        solution = service.solve(MatVec(a, z))
                        assert np.array_equal(solution.values, expected_mv)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        with SolverService(ArraySpec(W), n_shards=4) as service:
            threads = [
                threading.Thread(target=client, args=(index, service))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not failures
        assert stats.failed == 0
        assert stats.graphs == 15  # 6 clients x 5 rounds, half graphs
        assert stats.completed == 30


N_DIAMOND = 32


def _diamond(rng):
    """Two balanced branches: relu source feeding a matvec and a
    one-sweep jacobi (517 modeled array steps each at n=32, w=4), joined
    by an elementwise add.  With the branches placed on distinct shards
    the modeled pipelined makespan halves the sequential one."""
    a = rng.normal(size=(N_DIAMOND, N_DIAMOND))
    m = _spd(rng, N_DIAMOND)
    x = rng.normal(size=N_DIAMOND)
    src = Relu(x, name="src")
    left = MatVec(a, src, name="left")
    right = Jacobi(
        m,
        src,
        criteria=ConvergenceCriteria(atol=1e-30, max_iter=1),
        name="right",
    )
    return Graph(Bias(left, right, name="join"))


def _pin_branches(service, graph) -> None:
    """Place the diamond's branches on shards 0 and 1 explicitly (their
    natural hash placement may collide on one shard)."""
    keys = graph.plan_keys(W, ExecutionOptions())
    service.placement.assign(keys[graph.names.index("left")], 0)
    service.placement.assign(keys[graph.names.index("right")], 1)


def _lanes_drained(service, timeout: float = 2.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(
            worker.queue.handoff_depth == 0 for worker in service.shards
        ):
            return True
        time.sleep(0.005)
    return False


class TestPipelinedGraphExecution:
    def test_diamond_pipelines_across_shards_bit_identically(self, rng):
        graph = _diamond(rng)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            _pin_branches(service, graph)
            result = service.solve_graph(graph)
            assert _lanes_drained(service)
            stats = service.stats()
        reference = GraphCompiler(Solver(ArraySpec(W))).run(graph)
        for ours, theirs in zip(result.solutions, reference.solutions):
            assert np.array_equal(ours.values, theirs.values)
        # The branches really ran on distinct shards...
        assert set(result.placements) == {0, 1}
        # ...and level parallelism shows in the modeled array makespan.
        speedup = result.modeled_sequential_steps() / (
            result.modeled_pipeline_steps()
        )
        assert speedup >= 1.5
        # 4 segments: src | left, right | join; every level past the
        # first entered its shard through the handoff lane.
        assert stats.segments == 4
        assert stats.handoffs == 3
        assert stats.handoffs_rejected == 0
        assert stats.graphs == 1 and stats.completed == 1
        described = result.describe()
        assert "@shard 0" in described and "@shard 1" in described
        assert "placement: shards" in described
        assert "segments:" in stats.describe()

    def test_warm_pipelined_resubmission_keeps_zero_builds(self, rng):
        graph = _diamond(rng)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            _pin_branches(service, graph)
            cold = service.solve_graph(graph)
            assert not cold.warm
            before = counters.snapshot()
            warm_runs = [service.solve_graph(graph) for _ in range(3)]
            delta = counters.delta(before)
            stats = service.stats()
        assert delta.plan_builds == 0
        for warm in warm_runs:
            assert warm.warm
            assert warm.compile_plan_builds == 0 and warm.plan_builds == 0
            assert warm.placements == cold.placements
            assert np.array_equal(
                warm.output("join"), cold.output("join")
            )
        assert stats.graphs == 4
        assert stats.segments == 16

    def test_pipeline_false_forces_the_classic_home_shard_path(self, rng):
        graph = _diamond(rng)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            _pin_branches(service, graph)
            pipelined = service.solve_graph(graph)
            classic = service.submit_graph(graph, pipeline=False).result()
            stats = service.stats()
        assert pipelined.placements != ()
        assert classic.placements == ()
        assert np.array_equal(
            classic.output("join"), pipelined.output("join")
        )
        # Only the pipelined submission produced segments/handoffs.
        assert stats.segments == 4
        assert stats.graphs == 2


class TestGraphBackpressure:
    @staticmethod
    def _slow_level_zero(monkeypatch, seconds: float) -> None:
        """Make every level-0 segment take ``seconds`` to execute."""
        original = ProgramSegment.execute

        def slow(self, outputs, solutions, latencies):
            if self.level == 0:
                time.sleep(seconds)
            return original(self, outputs, solutions, latencies)

        monkeypatch.setattr(ProgramSegment, "execute", slow)

    @staticmethod
    def _wait_admissions_empty(service, shard: int = 0) -> None:
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if len(service.shards[shard].queue) == 0:
                return
            time.sleep(0.002)
        raise AssertionError("worker never picked up the queued request")

    @staticmethod
    def _pin_everything(service, graph, shard: int = 0):
        """Pin a graph's stage keys and its whole-job key to one shard."""
        base = ExecutionOptions()
        stage_keys = graph.plan_keys(W, base)
        for key in stage_keys:
            service.placement.assign(key, shard)
        graph_key = ("__graph__", stage_keys, W, base)
        service.placement.assign(graph_key, shard)

    def test_deadline_mid_pipeline_fails_the_whole_request(
        self, pipeline, rng, monkeypatch
    ):
        """A segment dequeued past its job's deadline fails the whole
        graph: later levels become no-ops, nothing leaks, and the
        expiry is accounted once."""
        self._slow_level_zero(monkeypatch, 0.15)
        graph, _operands = pipeline
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            future = service.submit_graph(graph, timeout=0.05)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5.0)
            assert _lanes_drained(service)
            # The service stays healthy for subsequent work.
            ok = service.solve("matvec", a, x)
            stats = service.stats()
        assert ok.kind == "matvec"
        assert stats.expired == 1
        assert stats.graphs == 0  # the expired graph never completed
        assert stats.failed == 0  # expiry is not a failure

    def test_shed_mid_pipeline_fails_cleanly_without_orphans(
        self, pipeline, rng, monkeypatch
    ):
        """``shed_oldest`` evicting a queued *segment* fails its whole
        pipelined job; siblings never dispatch, the victim's future
        reports the shed, and the surviving job completes."""
        self._slow_level_zero(monkeypatch, 0.35)
        graph, (a, _b, z, _matrix) = pipeline
        with SolverService(
            ArraySpec(W),
            n_shards=2,
            queue_depth=1,
            backpressure="shed_oldest",
            max_batch_size=1,
        ) as service:
            self._pin_everything(service, graph)
            service.placement.assign(service.plan_key("matvec", a, z), 0)
            first = service.submit_graph(graph)
            self._wait_admissions_empty(service)  # shard 0 is executing it
            second = service.submit_graph(graph)  # fills the depth-1 queue
            probe = service.submit("matvec", a, z)  # evicts second's level 0
            with pytest.raises(ServiceOverloadedError, match="shed"):
                second.result(timeout=5.0)
            survivor = first.result(timeout=5.0)
            assert probe.result(timeout=5.0).kind == "matvec"
            assert _lanes_drained(service)
            stats = service.stats()
        assert survivor.output("refined") is not None
        assert stats.shed == 1
        assert stats.graphs == 1  # only the survivor completed

    def test_reject_policy_refuses_pipelined_admission_at_submit(
        self, pipeline, monkeypatch
    ):
        """Under ``reject`` a full admission queue refuses a new
        pipelined graph synchronously at ``submit_graph``; already
        admitted jobs are untouched."""
        self._slow_level_zero(monkeypatch, 0.35)
        graph, _operands = pipeline
        with SolverService(
            ArraySpec(W),
            n_shards=2,
            queue_depth=1,
            backpressure="reject",
            max_batch_size=1,
        ) as service:
            self._pin_everything(service, graph)
            first = service.submit_graph(graph)
            self._wait_admissions_empty(service)
            second = service.submit_graph(graph)
            with pytest.raises(ServiceOverloadedError):
                service.submit_graph(graph)
            assert first.result(timeout=5.0).output("refined") is not None
            assert second.result(timeout=5.0).output("refined") is not None
            stats = service.stats()
        assert stats.rejected >= 1
        assert stats.graphs == 2  # the admitted jobs both completed
