"""Whole-pipeline jobs through the serving layer.

Acceptance: the 3-stage pipeline (matmul → matvec → refine) executes
through ``SolverService`` bit-identically to stage-by-stage ``Solver``
calls, re-submitted same-shaped graphs run shard-local with **zero** plan
builds after warmup, graph requests carry per-graph telemetry (stage
counts, fused stages, stage latencies) into the fleet snapshot, and a
failing graph resolves only its own future.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, Solver
from repro.errors import GraphCycleError, ShapeError
from repro.graph import Graph, MatMul, MatVec, Ref, Refine
from repro.instrumentation import counters
from repro.service import SolverService

W = 4
N = 8


def _spd(rng, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    return matrix + (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)


@pytest.fixture
def pipeline(rng):
    """The acceptance pipeline: matmul -> matvec -> refine, plus operands."""
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    z = rng.normal(size=N)
    matrix = _spd(rng, N)
    product = MatMul(a, b, name="product")
    projected = MatVec(product, z, name="projected")
    refined = Refine(matrix, projected, name="refined")
    return Graph(refined), (a, b, z, matrix)


class TestServiceGraphs:
    def test_three_stage_pipeline_bit_identical_to_solver(self, pipeline):
        graph, (a, b, z, matrix) = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            result = service.solve_graph(graph)
        reference = Solver(ArraySpec(W))
        c = reference.solve("matmul", a, b).values
        y = reference.solve("matvec", c, z).values
        x = reference.solve("refine", matrix, y).values
        assert np.array_equal(result.output("refined"), x)
        assert np.array_equal(result["product"].values, c)
        assert np.array_equal(result["projected"].values, y)

    def test_warm_resubmission_reports_zero_plan_builds(self, pipeline):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            cold = service.solve_graph(graph)
            assert not cold.warm
            before = counters.snapshot()
            results = [service.solve_graph(graph) for _ in range(5)]
            delta = counters.delta(before)
            stats = service.stats()
        # Every re-submission landed on the home shard's warm plans: the
        # graph executed with zero plan or transform construction.
        assert delta.plan_builds == 0
        assert delta.transform_constructions == 0
        for warm in results:
            assert warm.warm
            assert warm.plan_builds == 0 and warm.compile_plan_builds == 0
            assert np.array_equal(
                warm.output("refined"), cold.output("refined")
            )
        assert stats.graphs == 6

    def test_same_graph_routes_to_one_home_shard(self, pipeline):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            for _ in range(4):
                service.solve_graph(graph)
            stats = service.stats()
        homes = [shard for shard in stats.shards if shard.graphs]
        assert len(homes) == 1
        assert homes[0].graphs == 4

    def test_graph_telemetry_reaches_fleet_snapshot(self, pipeline, rng):
        graph, _operands = pipeline
        with SolverService(ArraySpec(W), n_shards=2) as service:
            service.solve_graph(graph)
            # A second, pairable graph: two independent same-shape matvecs.
            a, b = rng.normal(size=(N, N)), rng.normal(size=(N, N))
            x = rng.normal(size=N)
            paired = Graph(
                MatVec(a, x, name="left"), MatVec(b, x, name="right")
            )
            service.solve_graph(paired)
            stats = service.stats()
        assert stats.graphs == 2
        assert stats.graph_stages == 5
        assert stats.graph_fused == 1  # the left/right overlapped pair
        assert stats.stage_latency_p50 is not None
        described = stats.describe()
        assert "pipelines:" in described
        assert "2 graph(s), 5 stage(s), 1 fused" in described
        home = [shard for shard in stats.shards if shard.graphs]
        assert "pipeline" in home[0].describe()

    def test_fused_submission_shares_home_shard_and_converges(self, pipeline):
        graph, (a, b, z, _matrix) = pipeline
        with SolverService(ArraySpec(W), n_shards=4) as service:
            plain = service.solve_graph(graph)
            fused = service.solve_graph(graph, fuse=True)
            stats = service.stats()
        assert fused.fused_rewrites == 1
        assert np.allclose(
            fused.output("refined"), plain.output("refined")
        )
        homes = [shard for shard in stats.shards if shard.graphs]
        assert len(homes) == 1  # routing uses the unfused stage keys

    def test_per_request_options_reach_graph_execution(self, pipeline):
        """Regression: submit_graph's options must govern execution (and
        hence match the routing keys), not just the shard routing."""
        from repro.api import ExecutionOptions
        from repro.iterative import ConvergenceCriteria

        graph, _operands = pipeline
        capped = ExecutionOptions(
            criteria=ConvergenceCriteria(atol=1e-300, max_iter=1)
        )
        with SolverService(ArraySpec(W), n_shards=2) as service:
            default_run = service.solve_graph(graph)
            capped_run = service.solve_graph(graph, options=capped)
            warm = service.solve_graph(graph, options=capped)
        assert capped_run["refined"].stats["iterations"] == 1
        assert default_run["refined"].stats["iterations"] > 1
        # The option-carrying graph keeps the zero-recompile guarantee.
        assert warm.warm

    def test_invalid_graphs_fail_synchronously_at_submit(self, rng):
        a = rng.normal(size=(N, N))
        x = rng.normal(size=N)
        first = MatVec(a, x)
        second = MatVec(a, first)
        first.x = Ref(second)  # cycle
        with SolverService(ArraySpec(W), n_shards=2) as service:
            with pytest.raises(GraphCycleError):
                service.submit_graph(second)
            with pytest.raises(ShapeError):
                service.submit_graph(
                    MatVec(rng.normal(size=(4, 6)), MatVec(a, x))
                )
            # The service stays healthy for well-formed work.
            ok = service.solve(MatVec(a, x))
        assert ok.kind == "matvec"

    def test_failing_graph_resolves_only_its_own_future(self, pipeline, rng):
        graph, _operands = pipeline
        # Build-time checks cannot see a singular diagonal: jacobi's
        # nonzero-diagonal requirement only surfaces at execution, inside
        # the home shard, and must stay isolated to the failing request.
        from repro.graph import Jacobi

        singular = np.ones((N, N)) - np.eye(N) * 0.0
        singular[0, 0] = 0.0
        bad = Graph(Jacobi(singular, rng.normal(size=N)))
        with SolverService(ArraySpec(W), n_shards=2) as service:
            bad_future = service.submit_graph(bad)
            good = service.solve_graph(graph)
            with pytest.raises(ShapeError, match="diagonal"):
                bad_future.result()
            stats = service.stats()
        assert good.output("refined") is not None
        assert stats.failed == 1
        assert stats.completed >= 1

    def test_mixed_typed_and_graph_load_across_clients(self, pipeline, rng):
        """A small soak: graphs, typed solves and string solves interleaved."""
        import threading

        graph, (a, b, z, matrix) = pipeline
        reference = Solver(ArraySpec(W))
        expected_y = reference.solve(
            "matvec", reference.solve("matmul", a, b).values, z
        ).values
        expected_mv = reference.solve("matvec", a, z).values
        failures = []

        def client(index: int, service: SolverService) -> None:
            try:
                for round_index in range(5):
                    if (index + round_index) % 2:
                        result = service.solve_graph(graph)
                        assert np.array_equal(
                            result["projected"].values, expected_y
                        )
                    else:
                        solution = service.solve(MatVec(a, z))
                        assert np.array_equal(solution.values, expected_mv)
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        with SolverService(ArraySpec(W), n_shards=4) as service:
            threads = [
                threading.Thread(target=client, args=(index, service))
                for index in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats()
        assert not failures
        assert stats.failed == 0
        assert stats.graphs == 15  # 6 clients x 5 rounds, half graphs
        assert stats.completed == 30
