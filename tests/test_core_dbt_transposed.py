"""Unit tests for DBT-transposed-by-rows."""

from __future__ import annotations

import numpy as np

from repro.core.dbt import DBTByRowsTransform
from repro.core.dbt_transposed import (
    DBTTransposedByRowsTransform,
    dbt_transposed_by_rows,
)
from repro.matrices.padding import pad_matrix


class TestDefinition:
    def test_equals_transposed_by_rows_of_transpose(self, rng):
        """The defining identity: DBT_t(A) == (DBT_by_rows(A^T))^T."""
        matrix = rng.uniform(size=(6, 9))
        direct = DBTTransposedByRowsTransform(matrix, 3)
        via_definition = DBTByRowsTransform(matrix.T, 3).band.transpose()
        assert np.allclose(direct.band.to_dense(), via_definition.to_dense())

    def test_band_is_lower(self, rng):
        transform = DBTTransposedByRowsTransform(rng.uniform(size=(5, 7)), 3)
        band = transform.band
        assert band.lower == 2
        assert band.upper == 0

    def test_dimensions_swap(self, rng):
        transform = DBTTransposedByRowsTransform(rng.uniform(size=(6, 9)), 3)
        # The inner transform works on the 9x6 transpose: 6 block rows of 3.
        assert transform.band_cols == 18
        assert transform.band_rows == 20
        assert transform.block_col_count == 6
        assert transform.n_bar == 2  # block rows of the original 6x9 matrix
        assert transform.m_bar == 3

    def test_convenience_constructor(self, rng):
        assert dbt_transposed_by_rows(rng.uniform(size=(3, 3)), 3).w == 3


class TestContents:
    def test_band_full_and_provenance_consistent(self, rng):
        matrix = rng.uniform(size=(7, 5))
        transform = DBTTransposedByRowsTransform(matrix, 3)
        assert transform.is_band_full()
        padded = pad_matrix(matrix, 3)
        band = transform.band
        for (i, j), (oi, oj) in transform.provenance().items():
            assert band.get(i, j) == padded[oi, oj]

    def test_each_element_used_once(self, rng):
        matrix = rng.uniform(size=(6, 6))
        transform = DBTTransposedByRowsTransform(matrix, 3)
        origins = list(transform.provenance().values())
        assert len(origins) == len(set(origins)) == 36

    def test_diagonal_blocks_hold_lower_triangles(self, rng):
        matrix = rng.uniform(size=(6, 6))
        transform = DBTTransposedByRowsTransform(matrix, 3)
        padded = pad_matrix(matrix, 3)
        band = transform.band
        # The first diagonal block is the lower triangle (with diagonal) of
        # the original block (0, 0).
        block = np.array([[band.get(a, b) for b in range(3)] for a in range(3)])
        assert np.allclose(block, np.tril(padded[:3, :3]))

    def test_conditions_delegate_to_inner_transform(self, rng):
        transform = DBTTransposedByRowsTransform(rng.uniform(size=(5, 8)), 3)
        transform.verify_conditions()
        assert len(transform.assignments) == transform.block_col_count

    def test_band_fill_report(self, rng):
        transform = DBTTransposedByRowsTransform(rng.uniform(size=(4, 4)), 2)
        filled, total = transform.band_fill_report()
        assert filled == total == transform.band.band_positions()
