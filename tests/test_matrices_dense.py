"""Unit tests for ``repro.matrices.dense``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.dense import (
    as_matrix,
    as_vector,
    random_matmul_problem,
    random_matrix,
    random_matvec_problem,
    random_vector,
)


class TestValidation:
    def test_as_matrix_converts_lists(self):
        matrix = as_matrix([[1, 2], [3, 4]])
        assert matrix.dtype == float
        assert matrix.shape == (2, 2)

    def test_as_matrix_rejects_vectors_and_empties(self):
        with pytest.raises(ShapeError):
            as_matrix(np.ones(3))
        with pytest.raises(ShapeError):
            as_matrix(np.ones((0, 2)))

    def test_as_vector_converts_lists(self):
        vector = as_vector([1, 2, 3])
        assert vector.shape == (3,)

    def test_as_vector_rejects_matrices_and_empties(self):
        with pytest.raises(ShapeError):
            as_vector(np.ones((2, 2)))
        with pytest.raises(ShapeError):
            as_vector(np.array([]))


class TestGenerators:
    def test_random_matrix_is_reproducible(self):
        first = random_matrix(4, 5, seed=7)
        second = random_matrix(4, 5, seed=7)
        assert np.array_equal(first, second)
        assert first.shape == (4, 5)

    def test_random_vector_respects_bounds(self):
        vector = random_vector(100, seed=3, low=0.5, high=0.6)
        assert vector.min() >= 0.5
        assert vector.max() <= 0.6

    def test_matvec_problem_reference(self):
        problem = random_matvec_problem(5, 7, seed=1)
        assert problem.shape == (5, 7)
        expected = problem.matrix @ problem.x + problem.b
        assert np.allclose(problem.reference(), expected)

    def test_matvec_problem_without_bias(self):
        problem = random_matvec_problem(4, 4, seed=2, with_bias=False)
        assert np.all(problem.b == 0.0)

    def test_matmul_problem_reference(self):
        problem = random_matmul_problem(3, 4, 5, seed=1)
        assert problem.shape == (3, 4, 5)
        expected = problem.a @ problem.b + problem.e
        assert np.allclose(problem.reference(), expected)

    def test_matmul_problem_without_addend(self):
        problem = random_matmul_problem(3, 3, 3, seed=2, with_addend=False)
        assert np.all(problem.e == 0.0)
