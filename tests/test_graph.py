"""Tests for the typed-problem / pipeline-graph layer (``repro.graph``).

Covers the api_redesign acceptance criteria at graph level: typed
problems derive the same plan keys as their string spellings, diamond
DAGs dedup shared stages to one plan build, cycles are rejected at build
time, cross-stage shape mismatches fail at compile time (not run time),
a warm 3-stage pipeline re-executes with zero plan builds, the
matmul→matvec fusion rewrite, same-plan matvec stage pairing, and the
composition sugar (``@``, ``.then()``, LU factor refs, kwarg refs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.api.registry import get_handler
from repro.errors import (
    GraphCycleError,
    GraphError,
    ProblemKindError,
    ShapeError,
)
from repro.graph import (
    LU,
    Graph,
    GraphCompiler,
    Jacobi,
    MatMul,
    MatVec,
    Power,
    Problem,
    Ref,
    Refine,
    SOR,
    Triangular,
    problem_types,
)
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria

W = 4


@pytest.fixture
def solver() -> Solver:
    return Solver(ArraySpec(W))


def _spd(rng, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    return matrix + (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)


# --------------------------------------------------------------------------- #
# the kind -> problem class mapping and kind errors
# --------------------------------------------------------------------------- #
class TestProblemTypes:
    def test_mapping_is_stable_and_sorted(self):
        types = problem_types()
        assert list(types) == sorted(types)
        assert list(types) == list(problem_types())  # stable across calls

    def test_every_typed_kind_is_registered(self, solver):
        registered = set(solver.kinds())
        for kind, cls in problem_types().items():
            assert kind in registered
            assert cls.kind == kind

    def test_solver_exposes_the_mapping(self, solver):
        assert solver.problem_types() == problem_types()

    def test_handlers_link_back_to_problem_classes(self):
        assert get_handler("matvec").problem_class is MatVec
        assert get_handler("sor").problem_class is SOR
        # Baselines are deliberately string-only.
        assert get_handler("prt").problem_class is None
        assert get_handler("gauss_seidel").problem_class is None

    def test_unknown_kind_suggests_nearest(self, solver, rng):
        with pytest.raises(ProblemKindError, match="did you mean 'matvec'"):
            solver.solve("matvce", rng.normal(size=(4, 4)), rng.normal(size=4))
        with pytest.raises(ProblemKindError, match="did you mean 'jacobi'"):
            get_handler("jacobbi")

    def test_unknown_kind_without_near_match_lists_kinds(self):
        with pytest.raises(ProblemKindError, match="registered kinds"):
            get_handler("zzzzzzzz")


# --------------------------------------------------------------------------- #
# typed problems: plan keys and options overrides
# --------------------------------------------------------------------------- #
class TestTypedPlanKeys:
    def test_typed_and_string_plan_keys_match(self, solver, rng):
        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        assert solver.plan_key(MatVec(a, x)) == solver.plan_key("matvec", a, x)

    def test_overrides_ride_in_the_key(self, solver, rng):
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=8)
        plain = solver.plan_key(SOR(a, b))
        relaxed = solver.plan_key(SOR(a, b, omega=1.5))
        assert plain[3].sor_omega == 1.0
        assert relaxed[3].sor_omega == 1.5
        assert plain != relaxed
        criteria = ConvergenceCriteria(atol=1e-3, max_iter=7)
        assert solver.plan_key(Jacobi(a, b, criteria=criteria))[3].criteria == criteria

    def test_standalone_plan_key_matches_solver_key(self, solver, rng):
        a = rng.normal(size=(6, 9))
        x = rng.normal(size=9)
        problem = MatVec(a, x, overlapped=True)
        assert problem.plan_key(W, solver.options) == solver.plan_key(problem)

    def test_problem_with_refs_rejects_single_solve(self, solver, rng):
        a = rng.normal(size=(6, 6))
        chained = MatVec(a, MatVec(a, rng.normal(size=6)))
        with pytest.raises(GraphError, match="references other pipeline stages"):
            solver.solve(chained)

    def test_typed_solve_rejects_extra_operands(self, solver, rng):
        a = rng.normal(size=(6, 6))
        with pytest.raises(TypeError, match="carry their own operands"):
            solver.solve(MatVec(a, rng.normal(size=6)), a)


# --------------------------------------------------------------------------- #
# graph construction: sugar, naming, validation
# --------------------------------------------------------------------------- #
class TestGraphConstruction:
    def test_matmul_at_vector_builds_matvec_node(self, rng):
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        x = rng.normal(size=5)
        y = MatMul(a, b) @ x
        assert isinstance(y, MatVec)
        graph = Graph(y=y)
        assert [node.kind for node in graph.nodes] == ["matmul", "matvec"]
        assert graph.outputs[0][0] == "y"

    def test_ndarray_at_problem_builds_matvec_node(self, rng):
        a = rng.normal(size=(5, 5))
        inner = MatVec(a, rng.normal(size=5))
        outer = a @ inner
        assert isinstance(outer, MatVec)
        assert isinstance(outer.x, Ref)
        assert outer.x.node is inner

    def test_matmul_at_matrix_chains_matmuls(self, rng):
        a, b, c = (rng.normal(size=(4, 4)) for _ in range(3))
        chained = MatMul(a, b) @ c
        assert isinstance(chained, MatMul)

    def test_ndarray_at_matrix_producer_chains_matmuls(self, rng):
        """The sugar is symmetric: ndarray @ MatMul works like MatMul @ ndarray."""
        a, b, c = (rng.normal(size=(4, 4)) for _ in range(3))
        chained = a @ MatMul(b, c)
        assert isinstance(chained, MatMul)
        result = GraphCompiler(Solver(ArraySpec(W))).run(Graph(y=chained))
        assert np.allclose(result.output("y"), a @ (b @ c))

    def test_then_binds_matrix_and_sequences(self, rng):
        matrix = _spd(rng, 6)
        b = rng.normal(size=6)
        refine = LU(matrix).then(Refine(b))
        assert refine.matrix is matrix
        graph = Graph(refine)
        assert [node.kind for node in graph.nodes] == ["lu", "refine"]
        # The ordering edge is real: refine sits a level below the LU.
        assert graph.levels == (0, 1)

    def test_then_without_forwardable_matrix_raises(self, rng):
        with pytest.raises(GraphError, match="no matrix bound"):
            Graph(Refine(rng.normal(size=6)))

    def test_reusing_a_partial_node_across_then_calls_raises(self, rng):
        """Regression: a second then() must not silently keep the first
        predecessor's matrix while sequencing after the second."""
        b = rng.normal(size=6)
        partial = Refine(b)
        LU(_spd(rng, 6)).then(partial)
        with pytest.raises(GraphError, match="already sequenced"):
            LU(_spd(rng, 6)).then(partial)

    def test_explicitly_bound_successor_can_still_be_sequenced(self, rng):
        matrix = _spd(rng, 6)
        explicit = Refine(matrix, rng.normal(size=6))
        sequenced = LU(matrix).then(explicit)
        assert sequenced is explicit
        assert len(Graph(sequenced)) == 2

    def test_string_call_missing_matrix_keeps_shape_error(self, rng):
        """Regression: the string shim must not leak the pipeline-partial
        form — a missing matrix stays a ShapeError, as in the legacy API."""
        solver = Solver(ArraySpec(W))
        with pytest.raises(ShapeError, match="square system matrix"):
            solver.solve("jacobi", rng.normal(size=6))
        with pytest.raises(ShapeError, match="square system matrix"):
            solver.solve("refine", rng.normal(size=6))

    def test_lu_factor_refs_feed_triangular(self, solver, rng):
        matrix = _spd(rng, 6)
        b = rng.normal(size=6)
        lu = LU(matrix)
        forward = Triangular(lu.lower, b, name="forward")
        backward = Triangular(lu.upper, forward, lower=False, name="backward")
        result = GraphCompiler(solver).run(Graph(backward))
        assert np.allclose(result.output("backward"), np.linalg.solve(matrix, b))

    def test_consuming_factor_pair_without_selection_fails(self, rng):
        lu = LU(_spd(rng, 6))
        with pytest.raises(GraphError, match="lower/.upper"):
            Graph(Triangular(Ref(lu), rng.normal(size=6)))

    def test_cycle_rejected_at_build_time(self, rng):
        a = rng.normal(size=(5, 5))
        first = MatVec(a, rng.normal(size=5))
        second = MatVec(a, first)
        first.x = Ref(second)  # close the loop
        before = counters.snapshot()
        with pytest.raises(GraphCycleError):
            Graph(second)
        delta = counters.delta(before)
        assert delta.plan_builds == 0 and delta.plan_executions == 0

    def test_shape_mismatch_fails_at_build_not_run(self, rng):
        producer = MatVec(rng.normal(size=(8, 8)), rng.normal(size=8))
        before = counters.snapshot()
        with pytest.raises(ShapeError, match="length 6"):
            Graph(MatVec(rng.normal(size=(4, 6)), producer))
        delta = counters.delta(before)
        # Nothing compiled, nothing executed: the mismatch is a
        # build/compile-time error, not a run-time one.
        assert delta.plan_builds == 0 and delta.plan_executions == 0

    def test_matmul_inner_dimension_checked_across_stages(self, rng):
        c = MatMul(rng.normal(size=(4, 5)), rng.normal(size=(5, 6)))
        with pytest.raises(ShapeError, match="cannot multiply"):
            Graph(MatMul(c, rng.normal(size=(7, 3))))

    def test_duplicate_names_rejected(self, rng):
        a = rng.normal(size=(4, 4))
        one = MatVec(a, rng.normal(size=4), name="stage")
        two = MatVec(a, one, name="stage")
        with pytest.raises(GraphError, match="duplicate node name"):
            Graph(two)

    def test_auto_names_step_around_user_names(self, rng):
        """Regression: an explicit name that collides with a would-be
        auto name must not reject a valid graph."""
        a = rng.normal(size=(4, 4))
        inner = MatVec(a, rng.normal(size=4), name="matvec_1")
        outer = MatVec(a, inner)  # would auto-name to matvec_1
        graph = Graph(outer)
        assert len(set(graph.names)) == 2
        assert "matvec_1" in graph.names

    def test_keyword_output_names_do_not_mutate_nodes(self, rng):
        """Regression: building a graph must not rename shared problems."""
        a = rng.normal(size=(4, 4))
        problem = MatVec(a, rng.normal(size=4))
        first = Graph(y=problem)
        second = Graph(z=problem)
        assert problem.name is None
        assert first.outputs[0][0] == "y"
        assert second.outputs[0][0] == "z"
        assert first.names[0] == "y"  # stage naming still sees the kwarg

    def test_graph_needs_an_output(self):
        with pytest.raises(GraphError, match="at least one output"):
            Graph()

    def test_describe_lists_levels_and_deps(self, rng):
        a = rng.normal(size=(5, 5))
        y = (MatMul(a, a) @ rng.normal(size=5)).named("y")
        text = Graph(y).describe()
        assert "matmul" in text and "y: matvec" in text and "outputs: y" in text


# --------------------------------------------------------------------------- #
# compilation: dedup, warm re-execution, pairing, fusion
# --------------------------------------------------------------------------- #
class TestGraphCompiler:
    def test_diamond_dedups_to_one_plan_build(self, rng):
        n = 8
        a, b, c, d = (rng.normal(size=(n, n)) for _ in range(4))
        x = rng.normal(size=n)
        source = MatVec(a, x, name="source")
        left = MatVec(b, source, name="left")
        right = MatVec(c, source, name="right")
        sink = MatVec(d, left, b=right, name="sink")
        solver = Solver(ArraySpec(W))
        before = counters.snapshot()
        program = GraphCompiler(solver).compile(Graph(sink))
        delta = counters.delta(before)
        # Four same-shape matvec stages share one compiled plan.
        assert delta.plan_builds == 1
        assert program.compile_plan_builds == 1
        assert len({id(stage.plan) for stage in program.stages}) == 1

    def test_independent_same_plan_stages_pair_bit_identically(self, rng):
        n = 8
        a, b, c, d = (rng.normal(size=(n, n)) for _ in range(4))
        x = rng.normal(size=n)
        source = MatVec(a, x, name="source")
        left = MatVec(b, source, name="left")
        right = MatVec(c, source, name="right")
        sink = MatVec(d, left, b=right, name="sink")
        solver = Solver(ArraySpec(W))
        before = counters.snapshot()
        program = GraphCompiler(solver).compile(Graph(sink))
        assert len(program.pairs) == 1  # left + right share one array run
        result = program.run()
        assert counters.delta(before).fused_matvec_pairs == 1
        assert result.fused_pairs == 1
        assert result["left"].stats.get("paired") is True

        reference = Solver(ArraySpec(W))
        s = reference.solve("matvec", a, x).values
        left = reference.solve("matvec", b, s).values
        right = reference.solve("matvec", c, s).values
        expected = reference.solve("matvec", d, left, right).values
        assert np.array_equal(result.output("sink"), expected)

    def test_pairing_defers_until_both_partners_inputs_exist(self, rng):
        """Regression: a pair member's deps may follow its partner in the
        graph's topological order; execution must walk dependency levels
        so the shared run never resolves an unexecuted stage's output."""
        n = 8
        matrix = _spd(rng, n)
        b = rng.normal(size=n)
        a, a2 = rng.normal(size=(n, n)), rng.normal(size=(n, n))
        x = rng.normal(size=n)
        # Both level-1 matvecs share a plan, but their level-0 deps
        # (jacobi / matmul) interleave in topological order.
        s = MatVec(a, Jacobi(matrix, b), name="s")
        p = MatVec(MatMul(a, a2, name="prod"), x, name="p")
        solver = Solver(ArraySpec(W))
        result = GraphCompiler(solver).run(Graph(s, p))
        assert result.fused_pairs == 1
        reference = Solver(ArraySpec(W))
        j = reference.solve("jacobi", matrix, b).values
        prod = reference.solve("matmul", a, a2).values
        assert np.array_equal(result.output("s"), reference.solve("matvec", a, j).values)
        assert np.array_equal(result.output("p"), reference.solve("matvec", prod, x).values)

    def test_pairing_can_be_disabled(self, rng):
        n = 6
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        left = MatVec(a, x, name="l")
        right = MatVec(b, x, name="r")
        solver = Solver(ArraySpec(W))
        program = GraphCompiler(solver, pair=False).compile(Graph(left, right))
        assert program.pairs == ()

    def test_warm_three_stage_graph_reports_zero_plan_builds(self, rng):
        n = 8
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        z = rng.normal(size=n)
        matrix = _spd(rng, n)
        product = MatMul(a, b, name="product")
        projected = MatVec(product, z, name="projected")
        refined = Refine(matrix, projected, name="refined")
        solver = Solver(ArraySpec(W))
        compiler = GraphCompiler(solver)

        cold = compiler.run(Graph(refined))
        assert not cold.warm
        assert cold.compile_plan_builds + cold.plan_builds > 0

        before = counters.snapshot()
        warm = compiler.run(Graph(refined))
        delta = counters.delta(before)
        assert warm.warm
        assert warm.plan_builds == 0 and warm.compile_plan_builds == 0
        assert delta.plan_builds == 0
        assert delta.transform_constructions == 0
        assert np.array_equal(warm.output("refined"), cold.output("refined"))

    def test_three_stage_graph_bit_identical_to_stage_by_stage(self, rng):
        n = 8
        a = rng.normal(size=(n, n))
        b = rng.normal(size=(n, n))
        z = rng.normal(size=n)
        matrix = _spd(rng, n)
        product = MatMul(a, b, name="product")
        projected = MatVec(product, z, name="projected")
        refined = Refine(matrix, projected, name="refined")
        result = GraphCompiler(Solver(ArraySpec(W))).run(Graph(refined))

        reference = Solver(ArraySpec(W))
        c = reference.solve("matmul", a, b).values
        y = reference.solve("matvec", c, z).values
        x = reference.solve("refine", matrix, y).values
        assert np.array_equal(result.output("refined"), x)
        assert np.array_equal(result["product"].values, c)
        assert np.array_equal(result["projected"].values, y)
        assert set(result.residuals) >= {"refined"}

    def test_fusion_rewrites_exclusive_matmul_chain(self, rng):
        n = 6
        a, b, c = (rng.normal(size=(n, n)) for _ in range(3))
        x = rng.normal(size=n)
        y = (MatMul(a, MatMul(b, c)) @ x).named("y")
        solver = Solver(ArraySpec(W))
        program = GraphCompiler(solver, fuse=True).compile(Graph(y))
        assert program.fused_rewrites == 2
        assert [stage.kind for stage in program.stages] == ["matvec"] * 3
        result = program.run()
        assert np.allclose(result.output("y"), a @ (b @ (c @ x)))

    def test_fusion_skips_matmul_that_is_an_output(self, rng):
        n = 5
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        product = MatMul(a, b, name="product")
        y = MatVec(product, x, name="y")
        program = GraphCompiler(Solver(ArraySpec(W)), fuse=True).compile(
            Graph(product, y)
        )
        assert program.fused_rewrites == 0
        assert [stage.kind for stage in program.stages] == ["matmul", "matvec"]

    def test_fusion_skips_matmul_with_ordering_consumers(self, rng):
        """Regression: a matmul referenced by a .then() ordering edge must
        keep executing — fusing it away would resurrect it through the
        stale edge (and collide on its inherited name)."""
        n = 5
        a, b, c = (rng.normal(size=(n, n)) for _ in range(3))
        x, z = rng.normal(size=n), rng.normal(size=n)
        product = MatMul(a, b, name="product")
        projected = MatVec(product, x, name="projected")
        sequenced = product.then(MatVec(c, z, name="sequenced"))
        program = GraphCompiler(Solver(ArraySpec(W)), fuse=True).compile(
            Graph(projected, sequenced)
        )
        assert program.fused_rewrites == 0
        assert sorted(stage.kind for stage in program.stages) == [
            "matmul", "matvec", "matvec",
        ]
        result = program.run()
        reference = Solver(ArraySpec(W))
        prod = reference.solve("matmul", a, b).values
        assert np.array_equal(
            result.output("projected"),
            reference.solve("matvec", prod, x).values,
        )

    def test_fusion_skips_matmul_with_accumulator(self, rng):
        n = 5
        a, b, e = (rng.normal(size=(n, n)) for _ in range(3))
        y = MatMul(a, b, e) @ rng.normal(size=n)
        program = GraphCompiler(Solver(ArraySpec(W)), fuse=True).compile(Graph(y))
        assert program.fused_rewrites == 0

    def test_fusion_skips_matmul_with_node_options(self, rng):
        """An explicit per-node option pins the stage; fusing would erase
        it silently, so such matmuls stay intact."""
        n = 5
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        pinned = MatMul(a, b, options=ExecutionOptions(backend="simulate"))
        program = GraphCompiler(Solver(ArraySpec(W)), fuse=True).compile(
            Graph(MatVec(pinned, rng.normal(size=n), name="y"))
        )
        assert program.fused_rewrites == 0
        matmul_stage = [s for s in program.stages if s.kind == "matmul"][0]
        assert matmul_stage.plan.key[3].backend == "simulate"

    def test_fusion_reaches_matmuls_cloned_by_remapping(self, rng):
        """Regression: a matmul cloned during remapping (its .after edge
        pointed at a rewritten node) must still fuse when exclusive."""
        n = 5
        a, b, c, d = (rng.normal(size=(n, n)) for _ in range(4))
        x, y = rng.normal(size=n), rng.normal(size=n)
        first = MatVec(MatMul(a, b), x, name="first")
        second_mm = first.then(MatMul(c, d))
        out = MatVec(second_mm, y, name="out")
        program = GraphCompiler(Solver(ArraySpec(W)), fuse=True).compile(
            Graph(first, out)
        )
        assert program.fused_rewrites == 2
        assert all(stage.kind == "matvec" for stage in program.stages)
        result = program.run()
        assert np.allclose(result.output("first"), a @ (b @ x))
        assert np.allclose(result.output("out"), c @ (d @ y))

    def test_fusion_off_by_default_preserves_bit_identity(self, rng):
        n = 6
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        y = (MatMul(a, b) @ x).named("y")
        result = GraphCompiler(Solver(ArraySpec(W))).run(Graph(y))
        reference = Solver(ArraySpec(W))
        c = reference.solve("matmul", a, b).values
        expected = reference.solve("matvec", c, x).values
        assert np.array_equal(result.output("y"), expected)

    def test_kwarg_refs_flow_between_stages(self, rng):
        n = 6
        matrix = _spd(rng, n)
        b = rng.normal(size=n)
        start = Jacobi(matrix, b, name="start")
        eig = Power(matrix, x0=start, name="eig")
        result = GraphCompiler(Solver(ArraySpec(W))).run(Graph(eig))
        reference = Solver(ArraySpec(W))
        x0 = reference.solve("jacobi", matrix, b).values
        expected = reference.solve("power", matrix, x0=x0)
        assert np.array_equal(result.output("eig"), expected.values)
        assert result["eig"].stats["eigenvalue"] == expected.stats["eigenvalue"]

    def test_program_describe_reports_stages_and_pairs(self, rng):
        n = 6
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        graph = Graph(
            MatVec(a, x, name="left"), MatVec(b, x, name="right")
        )
        program = GraphCompiler(Solver(ArraySpec(W))).compile(graph)
        text = program.describe()
        assert "2 stage(s)" in text
        assert "paired with" in text
        result = program.run()
        described = result.describe()
        assert "overlapped pair" in described and "left" in described

    def test_result_lookup_errors_name_known_stages(self, rng):
        a = rng.normal(size=(4, 4))
        result = GraphCompiler(Solver(ArraySpec(W))).run(
            Graph(MatVec(a, rng.normal(size=4), name="only"))
        )
        with pytest.raises(KeyError, match="only"):
            result["missing"]
        with pytest.raises(KeyError, match="only"):
            result.output("missing")
        assert result.values is result.output("only")


class TestProgramSegments:
    """The level-aligned partition the cross-shard serving layer executes."""

    def _chain(self, rng, n=6):
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        z = rng.normal(size=n)
        product = MatMul(a, b, name="product")
        projected = MatVec(product, z, name="projected")
        return Graph(projected)

    def test_segments_partition_by_level(self, rng):
        program = GraphCompiler(Solver(ArraySpec(W))).compile(
            self._chain(rng)
        )
        segments = program.segments()
        assert [segment.level for segment in segments] == [0, 1]
        covered = [
            index for segment in segments for index in segment.stage_indices
        ]
        assert sorted(covered) == list(range(len(program.stages)))
        assert segments[0].plan_keys()[0][0] == "matmul"

    def test_placement_splits_levels_per_shard(self, rng):
        n = 6
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        # Level 0 holds two different-kind stages; a placement that
        # separates the kinds must split that level into two segments.
        graph = Graph(
            MatMul(a, b, name="product"), MatVec(a, x, name="projected")
        )
        program = GraphCompiler(Solver(ArraySpec(W))).compile(graph)
        by_kind = {"matmul": 0, "matvec": 1}
        segments = program.segments(lambda key: by_kind[key[0]])
        assert [segment.level for segment in segments] == [0, 0]
        assert [len(segment.stages) for segment in segments] == [1, 1]

    def test_pairs_stay_intra_segment_under_placement(self, rng):
        n = 6
        a, b = (rng.normal(size=(n, n)) for _ in range(2))
        x = rng.normal(size=n)
        graph = Graph(
            MatVec(a, x, name="left"), MatVec(b, x, name="right")
        )
        program = GraphCompiler(Solver(ArraySpec(W))).compile(graph)
        assert program.pairs  # the compiler paired the same-plan stages
        # Pair members share one plan, hence one placement: any key-based
        # placement keeps the pair inside a single segment.
        segments = program.segments(lambda key: 3)
        assert len(segments) == 1
        assert segments[0].pairs == program.pairs

    def test_placed_segment_execution_matches_run_bit_identically(self, rng):
        graph = self._chain(rng)
        solver = Solver(ArraySpec(W))
        program = GraphCompiler(solver).compile(graph)
        segments = program.segments(
            lambda key: 0 if key[0] == "matmul" else 1
        )
        n = len(program.stages)
        solutions = [None] * n
        outputs = [None] * n
        latencies = [0.0] * n
        for segment in segments:  # segment order == run()'s level order
            segment.execute(outputs, solutions, latencies)
        placements = [0] * n
        for segment in segments:
            shard = 0 if segment.plan_keys()[0][0] == "matmul" else 1
            for index in segment.stage_indices:
                placements[index] = shard
        result = program.assemble(
            solutions,
            outputs,
            latencies,
            total_seconds=0.0,
            compile_plan_builds=0,
            placements=tuple(placements),
        )
        reference = GraphCompiler(Solver(ArraySpec(W))).run(graph)
        for ours, theirs in zip(result.solutions, reference.solutions):
            assert np.array_equal(ours.values, theirs.values)
        assert result.placements == (0, 1)
        assert result.modeled_pipeline_steps() <= (
            result.modeled_sequential_steps()
        )

    def test_describe_reports_level_partition_and_placement(self, rng):
        program = GraphCompiler(Solver(ArraySpec(W))).compile(
            self._chain(rng)
        )
        text = program.describe()
        assert "levels:" in text
        assert "0: product | 1: projected" in text
        result = program.run()
        described = result.describe()
        assert "levels:" in described
        assert "@shard" not in described  # plain run: nothing was placed
        placed = program.assemble(
            list(result.solutions),
            [solution.values for solution in result.solutions],
            list(result.stage_seconds),
            total_seconds=result.total_seconds,
            compile_plan_builds=0,
            placements=(1, 0),
        )
        placed_text = placed.describe()
        assert "@shard 1" in placed_text and "@shard 0" in placed_text
        assert "placement: shards [0, 1]" in placed_text


# --------------------------------------------------------------------------- #
# the string shim
# --------------------------------------------------------------------------- #
class TestStringShim:
    def test_string_solve_builds_typed_problem_under_the_hood(self, rng):
        # Keyword execution args that only the typed constructors accept
        # now work through the string spelling too (the shim).
        solver = Solver(ArraySpec(W))
        matrix = _spd(rng, 6)
        b = rng.normal(size=6)
        typed = Solver(ArraySpec(W)).solve(SOR(matrix, b, omega=1.3))
        shimmed = solver.solve("sor", matrix, b, options=ExecutionOptions(sor_omega=1.3))
        assert np.array_equal(typed.values, shimmed.values)

    def test_solve_batch_accepts_problem_class(self, rng):
        solver = Solver(ArraySpec(W))
        a = rng.normal(size=(6, 6))
        batch = [(a, rng.normal(size=6)) for _ in range(3)]
        typed = solver.solve_batch(MatVec, batch)
        legacy = Solver(ArraySpec(W)).solve_batch("matvec", batch)
        for lhs, rhs in zip(typed, legacy):
            assert np.array_equal(lhs.values, rhs.values)

    def test_malformed_string_calls_report_constructor_diagnostics(self, rng):
        """Regression: typed-constructor errors must surface directly, not
        be swallowed into whatever the legacy path does with bad input."""
        solver = Solver(ArraySpec(W))
        a = rng.normal(size=(6, 6))
        with pytest.raises(TypeError, match="options must be ExecutionOptions"):
            solver.solve("matvec", a, rng.normal(size=6), options={"backend": "simulate"})
        with pytest.raises(TypeError):
            solver.solve("matvec", a)  # missing x: clear arity error

    def test_baselines_still_dispatch_without_typed_classes(self, rng):
        solver = Solver(ArraySpec(W))
        matrix = rng.normal(size=(W, W))
        x = rng.normal(size=W)
        solution = solver.solve("prt", matrix, x)
        assert solution.kind == "prt"
        assert "prt" not in problem_types()
