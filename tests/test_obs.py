"""The observability package: metrics, tracing, exporters.

Acceptance: typed instruments count exactly under a thread hammer (the
regression for the documented ``instrumentation.counters`` race),
registry snapshots are one consistent cut, nearest-rank percentiles
sort once and agree with the old per-call ``percentile``, span trees
nest through thread-local activation with an idempotent finish and
exact open-span accounting, the disabled path hands out the shared
no-op span, and the Chrome exporter emits loadable trace-event JSON
(metadata per track, complete events, flow arrow pairs).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.instrumentation import counters, registry as global_registry
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    active_span,
    chrome_trace,
    describe_trace,
    percentiles,
)
from repro.obs.metrics import Counter, Gauge, Histogram


class TestPercentiles:
    def test_nearest_rank_single_sort(self):
        assert percentiles([5.0, 1.0, 3.0], (0.50, 0.95, 0.99)) == (
            3.0,
            5.0,
            5.0,
        )

    def test_empty_sample_is_none_per_fraction(self):
        assert percentiles([], (0.5, 0.95)) == (None, None)

    def test_extremes(self):
        sample = list(range(100, 0, -1))
        low, high = percentiles(sample, (0.0, 1.0))
        assert (low, high) == (1, 100)

    def test_invalid_fraction_raises_even_on_empty_sample(self):
        with pytest.raises(ValueError, match="fraction"):
            percentiles([], (1.5,))
        with pytest.raises(ValueError, match="fraction"):
            percentiles([1.0], (-0.1,))

    def test_single_element_answers_every_fraction(self):
        assert percentiles([7.0], (0.0, 0.5, 0.99, 1.0)) == (7.0,) * 4


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter("c")
        assert counter.inc() == 1
        assert counter.inc(4) == 5
        assert counter.value == 5
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_gauge_tracks_highwater(self):
        gauge = Gauge("depth")
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        gauge.dec()
        assert gauge.value == 1
        assert gauge.highwater == 7

    def test_histogram_reservoir_slides_but_totals_are_lifetime(self):
        histogram = Histogram("lat", reservoir=4)
        histogram.extend([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        snap = histogram.snapshot()
        assert snap.count == 6
        assert snap.total == 21.0
        assert snap.sample == (3.0, 4.0, 5.0, 6.0)  # most recent 4
        assert snap.mean == pytest.approx(3.5)
        assert snap.percentiles((0.5,)) == (5.0,)

    def test_empty_histogram_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap.count == 0
        assert snap.mean is None
        assert snap.percentiles((0.5, 0.99)) == (None, None)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", shard=0)
        b = registry.counter("requests", shard=0)
        c = registry.counter("requests", shard=1)
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", shard=0, kind="matvec")
        b = registry.counter("x", kind="matvec", shard=0)
        assert a is b

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already a Counter"):
            registry.gauge("x")

    def test_snapshot_folds_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("req", shard=0).inc(3)
        registry.counter("req", shard=1).inc(4)
        registry.gauge("depth", shard=0).set(5)
        registry.histogram("lat", shard=0).extend([1.0, 2.0])
        registry.histogram("lat", shard=1).observe(3.0)
        snap = registry.snapshot()
        assert snap.value("req", shard=1) == 4
        assert snap.total("req") == 7
        assert snap.value("depth.highwater", shard=0) == 5
        assert sorted(snap.merged_sample("lat")) == [1.0, 2.0, 3.0]
        assert "req{shard=0} 3" in snap.describe()

    def test_counter_hammer_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * per_thread


class TestInstrumentationBridge:
    """The satellite fix: ``counters`` bumps are locked and mirrored."""

    def test_bump_hammer_is_exact(self):
        # The documented race this PR removes: concurrent read-modify-write
        # on counters.plan_builds could lose increments under the shard
        # pool.  bump() serializes on the registry lock, so the total is
        # exact — and the mirrored registry counter advances in lockstep.
        before = counters.snapshot()
        mirrored_before = global_registry.counter("repro.plan_builds").value
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                counters.bump("plan_builds")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * per_thread
        assert counters.delta(before).plan_builds == expected
        mirrored = global_registry.counter("repro.plan_builds").value
        assert mirrored - mirrored_before == expected

    def test_bump_with_amount(self):
        before = counters.snapshot()
        counters.bump("plan_executions", 3)
        assert counters.delta(before).plan_executions == 3


class TestTracer:
    def test_span_tree_and_activation(self):
        tracer = Tracer()
        assert active_span() is None
        root = tracer.start_trace("request", kind="matvec")
        with root:
            assert active_span() is root
            with root.child("execute", track="shard 0") as child:
                assert active_span() is child
                grand = child.child("plan_lookup", cache="hit")
                grand.finish()
            assert active_span() is root
        assert active_span() is None
        spans = tracer.spans(root.trace_id)
        by_name = {span.name: span for span in spans}
        assert by_name["execute"].parent_id == root.span_id
        assert by_name["plan_lookup"].parent_id == by_name["execute"].span_id
        assert by_name["plan_lookup"].track == "shard 0"  # inherited
        assert by_name["request"].args == {"kind": "matvec"}
        assert tracer.open_spans == 0

    def test_retroactive_span_uses_given_endpoints(self):
        tracer = Tracer()
        root = tracer.start_trace("request")
        wait = root.child("queue_wait", start=10.0)
        wait.finish(end=12.5)
        root.finish()
        assert wait.start == 10.0
        assert wait.duration == pytest.approx(2.5)

    def test_finish_is_idempotent_first_wins(self):
        tracer = Tracer()
        span = tracer.start_trace("request")
        span.finish()
        end = span.end
        span.finish(status="error", error=RuntimeError("late"))
        assert span.status == "ok"
        assert span.error is None
        assert span.end == end
        assert tracer.open_spans == 0

    def test_exit_on_exception_marks_error(self):
        tracer = Tracer()
        span = tracer.start_trace("request")
        with pytest.raises(RuntimeError):
            with span:
                raise RuntimeError("boom")
        assert span.status == "error"
        assert span.error == "RuntimeError: boom"
        assert active_span() is None

    def test_disabled_tracer_hands_out_the_null_span(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.start_trace("request")
        assert span is NULL_SPAN
        assert span.child("x") is NULL_SPAN
        with span:
            # The null span never activates: ambient hooks stay silent.
            assert active_span() is None
        assert NULL_TRACER.open_spans == 0
        assert NULL_TRACER.spans() == ()

    def test_null_parent_starts_a_fresh_trace(self):
        tracer = Tracer()
        span = tracer.start_span("orphanless", parent=NULL_SPAN)
        span.finish()
        assert span.parent_id is None
        assert span.trace_id == span.span_id

    def test_max_spans_drops_but_keeps_open_accounting(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            tracer.start_trace("request").finish()
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 3
        assert tracer.open_spans == 0

    def test_trace_ids_and_clear(self):
        tracer = Tracer()
        first = tracer.start_trace("a")
        second = tracer.start_trace("b")
        first.finish()
        second.finish()
        assert tracer.trace_ids() == (first.trace_id, second.trace_id)
        tracer.clear()
        assert tracer.spans() == ()


class TestChromeExport:
    def _sample_tracer(self) -> Tracer:
        tracer = Tracer()
        root = tracer.start_trace("request matvec", kind="matvec")
        execute = root.child("execute", track="shard 0", category="execute")
        flow = tracer.new_flow()
        execute.flow_out(flow)
        execute.finish()
        # The consumer starts after the producer finished — the shape a
        # real handoff has, and what makes the arrow point forward.
        segment = root.child("segment L1", track="shard 1", category="segment")
        segment.flow_in(flow)
        segment.finish()
        root.finish()
        return tracer

    def test_complete_events_and_track_metadata(self):
        tracer = self._sample_tracer()
        payload = tracer.chrome_trace()
        events = payload["traceEvents"]
        assert payload["displayTimeUnit"] == "ms"
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert names == {"client", "shard 0", "shard 1"}
        complete = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in complete} == {
            "request matvec",
            "execute",
            "segment L1",
        }
        for event in complete:
            assert event["pid"] == 1
            assert event["dur"] >= 0
            assert event["args"]["status"] == "ok"
        root_event = next(
            event for event in complete if event["name"] == "request matvec"
        )
        assert root_event["args"]["kind"] == "matvec"
        # Client track sorts first.
        track_of = {
            event["tid"]: event["args"]["name"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        sort_keys = {
            track_of[event["tid"]]: event["args"]["sort_index"]
            for event in events
            if event["ph"] == "M" and event["name"] == "thread_sort_index"
        }
        assert sort_keys["client"] < sort_keys["shard 0"] < sort_keys["shard 1"]

    def test_flow_arrow_pairs_match_ids(self):
        payload = self._sample_tracer().chrome_trace()
        events = payload["traceEvents"]
        starts = [event for event in events if event["ph"] == "s"]
        ends = [event for event in events if event["ph"] == "f"]
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0]["id"] == ends[0]["id"]
        assert ends[0]["bp"] == "e"
        # Arrow tail on the producer track, head on the consumer track.
        assert starts[0]["tid"] != ends[0]["tid"]
        assert starts[0]["ts"] <= ends[0]["ts"]

    def test_open_spans_are_not_exported(self):
        tracer = Tracer()
        root = tracer.start_trace("request")
        child = root.child("execute")
        child.finish()
        payload = chrome_trace(tracer.spans(), epoch=0.0)
        names = {
            event["name"]
            for event in payload["traceEvents"]
            if event["ph"] == "X"
        }
        assert names == {"execute"}
        root.finish()

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]

    def test_describe_trace_renders_the_tree(self):
        tracer = self._sample_tracer()
        text = tracer.describe_trace()
        lines = text.splitlines()
        assert lines[0].startswith("request matvec (client)")
        assert lines[1].startswith("  execute (shard 0)")
        assert lines[2].startswith("  segment L1 (shard 1)")
        assert describe_trace(tracer.spans()) == text

    def test_error_status_survives_export(self):
        tracer = Tracer()
        span = tracer.start_trace("request")
        span.finish(status="error", error=ValueError("bad"))
        event = next(
            event
            for event in tracer.chrome_trace()["traceEvents"]
            if event["ph"] == "X"
        )
        assert event["args"]["status"] == "error"
        assert event["args"]["error"] == "ValueError: bad"
