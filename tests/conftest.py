"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator; reseeded per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matvec_problem(rng):
    """A dense matrix-vector problem whose dimensions are not multiples of w."""
    matrix = rng.uniform(-1.0, 1.0, size=(7, 10))
    x = rng.uniform(-1.0, 1.0, size=10)
    b = rng.uniform(-1.0, 1.0, size=7)
    return matrix, x, b


@pytest.fixture
def paper_example_problem(rng):
    """The paper's Fig. 2 / Fig. 3 concrete case: n=6, m=9, w=3."""
    matrix = rng.uniform(-1.0, 1.0, size=(6, 9))
    x = rng.uniform(-1.0, 1.0, size=9)
    b = rng.uniform(-1.0, 1.0, size=6)
    return matrix, x, b


@pytest.fixture
def small_matmul_problem(rng):
    """A dense matrix-matrix problem with non-aligned dimensions."""
    a = rng.uniform(-1.0, 1.0, size=(4, 5))
    b = rng.uniform(-1.0, 1.0, size=(5, 7))
    e = rng.uniform(-1.0, 1.0, size=(4, 7))
    return a, b, e
