"""Unit tests for ``repro.systolic.stream``."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError
from repro.systolic.stream import DataStream, ScheduledValue


class TestScheduledValue:
    def test_rejects_negative_cycles(self):
        with pytest.raises(ScheduleError):
            ScheduledValue(cycle=-1, value=1.0)

    def test_carries_tag(self):
        value = ScheduledValue(cycle=3, value=2.0, tag=("x", 1))
        assert value.tag == ("x", 1)


class TestDataStream:
    def test_schedule_and_get(self):
        stream = DataStream("x in")
        stream.schedule(4, 1.5, tag=("x", 0))
        item = stream.get(4)
        assert item is not None
        assert item.value == 1.5
        assert stream.get(5) is None
        assert 4 in stream and 5 not in stream

    def test_double_booking_raises(self):
        stream = DataStream()
        stream.schedule(2, 1.0)
        with pytest.raises(ScheduleError):
            stream.schedule(2, 3.0)

    def test_iteration_is_cycle_ordered(self):
        stream = DataStream()
        stream.schedule(6, 3.0)
        stream.schedule(2, 1.0)
        stream.schedule(4, 2.0)
        assert [item.cycle for item in stream] == [2, 4, 6]
        assert stream.values() == [1.0, 2.0, 3.0]
        assert stream.cycles() == [2, 4, 6]

    def test_first_last_and_len(self):
        stream = DataStream()
        assert stream.first_cycle is None and stream.last_cycle is None
        stream.schedule(3, 1.0)
        stream.schedule(9, 2.0)
        assert stream.first_cycle == 3
        assert stream.last_cycle == 9
        assert len(stream) == 2

    def test_tag_filtering(self):
        stream = DataStream()
        stream.schedule(0, 1.0, tag=("x", 0))
        stream.schedule(1, 2.0, tag=("y", 0))
        stream.schedule(2, 3.0, tag=("x", 1))
        stream.schedule(3, 4.0)
        xs = stream.tagged("x")
        assert [item.value for item in xs] == [1.0, 3.0]
        assert len(stream.tagged()) == 4
        assert stream.find_tag(("y", 0)).value == 2.0
        assert stream.find_tag(("z", 9)) is None

    def test_as_pairs(self):
        stream = DataStream()
        stream.schedule(1, 5.0)
        stream.schedule(0, 4.0)
        assert stream.as_pairs() == [(0, 4.0), (1, 5.0)]

    def test_shifted_preserves_values(self):
        stream = DataStream("a")
        stream.schedule(0, 1.0, tag=("x", 0))
        stream.schedule(2, 2.0)
        shifted = stream.shifted(5)
        assert shifted.cycles() == [5, 7]
        assert shifted.get(5).tag == ("x", 0)

    def test_merged_with_detects_collisions(self):
        first = DataStream("a")
        second = DataStream("b")
        first.schedule(0, 1.0)
        second.schedule(1, 2.0)
        merged = first.merged_with(second)
        assert merged.cycles() == [0, 1]
        second.schedule(0, 3.0)
        with pytest.raises(ScheduleError):
            first.merged_with(second)
