"""Request tracing through the serving layer, end to end.

Acceptance (ISSUE PR 8): a two-shard pipelined diamond yields **one**
coherent span tree — admission wait, queue wait, per-shard segment
executions nested by dependency level, handoff-lane transits — whose
Chrome export carries a flow arrow for every handoff between the
producing and consuming shard tracks; failure paths (shed, expired,
errored segment) close every span they opened and mark the root span
failed; and with tracing disabled the service runs the guarded no-op
path.  The telemetry side: p99 joins the percentile columns, and the
instrumentation counters stay exact under the shard pool.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.errors import DeadlineExceededError, ServiceOverloadedError
from repro.graph import Graph, GraphCompiler, Jacobi, MatMul, MatVec, ProgramSegment, Refine
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria
from repro.nn import Bias, Relu
from repro.obs import NULL_TRACER, Tracer
from repro.service import SolverService

W = 4
N = 8
N_DIAMOND = 32


def _spd(rng, n: int) -> np.ndarray:
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    return matrix + (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)


def _diamond(rng):
    """Relu source feeding a matvec branch and a one-sweep jacobi branch,
    joined by an elementwise add — levels [src] / [left, right] / [join]."""
    a = rng.normal(size=(N_DIAMOND, N_DIAMOND))
    m = _spd(rng, N_DIAMOND)
    x = rng.normal(size=N_DIAMOND)
    src = Relu(x, name="src")
    left = MatVec(a, src, name="left")
    right = Jacobi(
        m,
        src,
        criteria=ConvergenceCriteria(atol=1e-30, max_iter=1),
        name="right",
    )
    return Graph(Bias(left, right, name="join"))


def _pin_branches(service, graph) -> None:
    keys = graph.plan_keys(W, ExecutionOptions())
    service.placement.assign(keys[graph.names.index("left")], 0)
    service.placement.assign(keys[graph.names.index("right")], 1)


@pytest.fixture
def pipeline(rng):
    """The 3-stage acceptance pipeline: matmul -> matvec -> refine."""
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    z = rng.normal(size=N)
    matrix = _spd(rng, N)
    product = MatMul(a, b, name="product")
    projected = MatVec(product, z, name="projected")
    refined = Refine(matrix, projected, name="refined")
    return Graph(refined)


def _roots(spans):
    return [span for span in spans if span.parent_id is None]


class TestPipelinedGraphTrace:
    def test_two_shard_diamond_yields_one_coherent_tree(self, rng):
        graph = _diamond(rng)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
            _pin_branches(service, graph)
            result = service.solve_graph(graph)
        assert set(result.placements) == {0, 1}
        assert tracer.open_spans == 0

        spans = tracer.spans()
        roots = _roots(spans)
        assert len(roots) == 1  # one request, one tree
        root = roots[0]
        assert root.name == "request graph"
        assert root.status == "ok"
        assert root.args["pipelined"] is True

        # Span nesting matches the level partition: one segment span per
        # placed segment, all direct children of the root, branches on
        # their pinned shard tracks.
        segments = [span for span in spans if span.category == "segment"]
        assert all(span.parent_id == root.span_id for span in segments)
        by_level = {}
        for span in segments:
            by_level.setdefault(span.args["level"], []).append(span)
        assert sorted(by_level) == [0, 1, 2]
        assert len(by_level[1]) == 2
        assert {span.track for span in by_level[1]} == {"shard 0", "shard 1"}
        # Levels execute in dependency order.
        assert max(s.end for s in by_level[0]) <= min(s.start for s in by_level[1])
        assert max(s.end for s in by_level[1]) <= min(s.start for s in by_level[2])

        # Per-stage spans nest under their segment, which nests the
        # plan execution below it.
        stage_spans = [span for span in spans if span.category == "stage"]
        assert {span.name for span in stage_spans} == {
            "stage src",
            "stage left",
            "stage right",
            "stage join",
        }
        segment_ids = {span.span_id for span in segments}
        assert all(span.parent_id in segment_ids for span in stage_spans)

        # Every handoff is a flow from the producing segment span to the
        # consuming one, one level down; the wave released by L0 includes
        # the cross-shard arrow between the two branch tracks.
        producers = {flow: span for span in spans for flow in span.flows_out}
        consumers = {flow: span for span in spans for flow in span.flows_in}
        assert set(producers) == set(consumers)
        assert len(producers) == 3  # L0 -> {left, right}, L1 -> join
        for flow, producer in producers.items():
            consumer = consumers[flow]
            assert consumer.args["level"] == producer.args["level"] + 1
            assert producer.end <= consumer.start
        assert any(
            producers[flow].track != consumers[flow].track
            for flow in producers
        )

        # Sum of execute-span durations never exceeds the root's.
        total = sum(span.duration for span in segments)
        assert total <= root.duration

    def test_chrome_export_carries_the_handoff_arrows(self, rng):
        graph = _diamond(rng)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
            _pin_branches(service, graph)
            service.solve_graph(graph)
        payload = tracer.chrome_trace()
        events = payload["traceEvents"]
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        ends = {e["id"]: e for e in events if e["ph"] == "f"}
        assert set(starts) == set(ends) and len(starts) == 3
        for flow_id, start in starts.items():
            assert start["ts"] <= ends[flow_id]["ts"]
        # Both shard tracks appear, and at least one arrow crosses tracks.
        assert any(
            starts[flow]["tid"] != ends[flow]["tid"] for flow in starts
        )
        tracks = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert tracks == {"client", "shard 0", "shard 1"}

    def test_warm_resubmission_traces_plan_cache_hits(self, rng):
        graph = _diamond(rng)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
            _pin_branches(service, graph)
            service.solve_graph(graph)
            tracer.clear()
            warm = service.solve_graph(graph)
        assert warm.warm
        spans = tracer.spans()
        lookups = [span for span in spans if span.name == "plan_lookup"]
        assert lookups and all(
            span.args["cache"] == "hit" for span in lookups
        )
        assert tracer.open_spans == 0


class TestClassicRequestTrace:
    def test_solve_produces_the_expected_child_spans(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=1, tracer=tracer) as service:
            service.solve("matvec", a, x)
            service.solve("matvec", a, x)
        assert tracer.open_spans == 0
        traces = tracer.trace_ids()
        assert len(traces) == 2
        cold = {span.name: span for span in tracer.spans(traces[0])}
        warm = {span.name: span for span in tracer.spans(traces[1])}
        for tree in (cold, warm):
            assert tree["request matvec"].status == "ok"
            for name in ("admission_wait", "queue_wait", "execute"):
                assert name in tree, tree.keys()
            assert tree["execute"].track == "shard 0"
            execute_id = tree["execute"].span_id
            assert tree["plan_lookup"].parent_id == execute_id
            assert tree["plan.execute"].parent_id == execute_id
        assert cold["plan_lookup"].args["cache"] == "miss"
        assert warm["plan_lookup"].args["cache"] == "hit"

    def test_disabled_tracer_records_nothing(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        with SolverService(ArraySpec(W), n_shards=1) as service:
            assert service.tracer is NULL_TRACER
            solution = service.solve("matvec", a, x)
        assert solution.kind == "matvec"
        assert NULL_TRACER.spans() == ()
        assert NULL_TRACER.open_spans == 0

    def test_program_run_profiling_hook(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        program = GraphCompiler(Solver(ArraySpec(W))).compile(
            Graph(MatVec(a, x, name="only"))
        )
        tracer = Tracer()
        program.run(tracer=tracer)
        spans = {span.name: span for span in tracer.spans()}
        assert spans["pipeline.run"].status == "ok"
        assert spans["stage only"].parent_id == spans["pipeline.run"].span_id
        assert spans["plan.execute"].parent_id == spans["stage only"].span_id
        assert tracer.open_spans == 0
        # The default path stays untraced.
        assert program.run().outputs


class TestFailurePathsCloseTheirSpans:
    """No orphaned open spans, root marked failed — the satellite tests."""

    @staticmethod
    def _slow_level_zero(monkeypatch, seconds: float) -> None:
        original = ProgramSegment.execute

        def slow(self, outputs, solutions, latencies):
            if self.level == 0:
                time.sleep(seconds)
            return original(self, outputs, solutions, latencies)

        monkeypatch.setattr(ProgramSegment, "execute", slow)

    @staticmethod
    def _pin_everything(service, graph, shard: int = 0):
        base = ExecutionOptions()
        stage_keys = graph.plan_keys(W, base)
        for key in stage_keys:
            service.placement.assign(key, shard)
        service.placement.assign(("__graph__", stage_keys, W, base), shard)

    @staticmethod
    def _wait_admissions_empty(service, shard: int = 0) -> None:
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if len(service.shards[shard].queue) == 0:
                return
            time.sleep(0.002)
        raise AssertionError("worker never picked up the queued request")

    def test_expired_pipelined_job_fails_the_root_span(
        self, pipeline, monkeypatch
    ):
        self._slow_level_zero(monkeypatch, 0.15)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
            future = service.submit_graph(pipeline, timeout=0.05)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=5.0)
        assert tracer.open_spans == 0
        roots = _roots(tracer.spans())
        graph_roots = [r for r in roots if r.name == "request graph"]
        assert len(graph_roots) == 1
        assert graph_roots[0].status == "error"
        assert "DeadlineExceededError" in graph_roots[0].error

    def test_shed_pipelined_job_fails_the_root_span(
        self, pipeline, rng, monkeypatch
    ):
        self._slow_level_zero(monkeypatch, 0.35)
        a, z = rng.normal(size=(N, N)), rng.normal(size=N)
        tracer = Tracer()
        with SolverService(
            ArraySpec(W),
            n_shards=2,
            queue_depth=1,
            backpressure="shed_oldest",
            max_batch_size=1,
            tracer=tracer,
        ) as service:
            self._pin_everything(service, pipeline)
            service.placement.assign(service.plan_key("matvec", a, z), 0)
            first = service.submit_graph(pipeline)
            self._wait_admissions_empty(service)
            second = service.submit_graph(pipeline)  # fills the queue
            probe = service.submit("matvec", a, z)  # sheds second's level 0
            with pytest.raises(ServiceOverloadedError, match="shed"):
                second.result(timeout=5.0)
            first.result(timeout=5.0)
            probe.result(timeout=5.0)
        assert tracer.open_spans == 0
        statuses = sorted(
            root.status
            for root in _roots(tracer.spans())
            if root.name == "request graph"
        )
        assert statuses == ["error", "ok"]

    def test_errored_segment_closes_its_span_and_fails_the_root(
        self, pipeline, monkeypatch
    ):
        original = ProgramSegment.execute

        def boom(self, outputs, solutions, latencies):
            if self.level == 1:
                raise RuntimeError("segment exploded")
            return original(self, outputs, solutions, latencies)

        monkeypatch.setattr(ProgramSegment, "execute", boom)
        tracer = Tracer()
        with SolverService(ArraySpec(W), n_shards=2, tracer=tracer) as service:
            future = service.submit_graph(pipeline)
            with pytest.raises(RuntimeError, match="segment exploded"):
                future.result(timeout=5.0)
        assert tracer.open_spans == 0
        spans = tracer.spans()
        root = next(r for r in _roots(spans) if r.name == "request graph")
        assert root.status == "error"
        assert "segment exploded" in root.error
        failed_segments = [
            span
            for span in spans
            if span.category == "segment" and span.status == "error"
        ]
        assert len(failed_segments) == 1
        assert failed_segments[0].args["level"] == 1

    def test_rejected_request_closes_its_root_synchronously(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        tracer = Tracer()
        with SolverService(
            ArraySpec(W),
            n_shards=1,
            queue_depth=1,
            backpressure="reject",
            max_batch_size=1,
            tracer=tracer,
        ) as service:
            key = service.plan_key("matvec", a, x)
            service.placement.assign(key, 0)
            futures = []
            rejected = 0
            for _ in range(12):
                try:
                    futures.append(service.submit("matvec", a, x))
                except ServiceOverloadedError:
                    rejected += 1
            for future in futures:
                future.result(timeout=5.0)
        assert rejected >= 1
        assert tracer.open_spans == 0
        statuses = [root.status for root in _roots(tracer.spans())]
        assert statuses.count("error") == rejected
        assert statuses.count("ok") == len(futures)


class TestTelemetryPercentiles:
    def test_p99_joins_the_latency_columns(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            for _ in range(20):
                service.solve("matvec", a, x)
            stats = service.stats()
        assert stats.latency_p99 is not None
        assert stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99
        assert "p99" in stats.describe()
        shard = next(s for s in stats.shards if s.completed)
        assert shard.latency_p99 is not None
        assert "p99" in shard.describe()

    def test_stage_latency_p99_for_graphs(self, pipeline):
        with SolverService(ArraySpec(W), n_shards=2) as service:
            for _ in range(5):
                service.solve_graph(pipeline)
            stats = service.stats()
        assert stats.stage_latency_p99 is not None
        assert stats.stage_latency_p50 <= stats.stage_latency_p99


class TestCounterExactnessUnderLoad:
    def test_warm_plan_executions_count_exactly(self, rng):
        """The documented best-effort caveat is gone: concurrent
        submissions account every plan execution."""
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        n_threads, per_thread = 4, 25
        with SolverService(ArraySpec(W), n_shards=2) as service:
            service.solve("matvec", a, x)  # warm the plan
            before = counters.snapshot()
            errors = []

            def client():
                try:
                    for _ in range(per_thread):
                        service.solve("matvec", a, x)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=client) for _ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            delta = counters.delta(before)
        assert not errors
        assert delta.plan_executions == n_threads * per_thread
        assert delta.plan_builds == 0


class TestQosPathsCloseTheirSpans:
    """Rate-limit rejections and priority sheds leave no open spans."""

    def test_rate_limited_submit_closes_its_root(self, rng):
        from repro.errors import RateLimitedError
        from repro.service import RateLimit

        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        tracer = Tracer()
        with SolverService(
            ArraySpec(W),
            n_shards=1,
            tracer=tracer,
            rate_limits={"noisy": RateLimit(rate=0.001, burst=1)},
        ) as service:
            service.submit("matvec", a, x, client_id="noisy").result(timeout=5.0)
            rejected = 0
            for _ in range(3):
                try:
                    service.submit("matvec", a, x, client_id="noisy")
                except RateLimitedError:
                    rejected += 1
            assert rejected == 3
        assert tracer.open_spans == 0
        roots = _roots(tracer.spans())
        assert [r.status for r in roots].count("error") == rejected
        errored = [r for r in roots if r.status == "error"]
        assert all("RateLimitedError" in r.error for r in errored)

    def test_rate_limited_graph_closes_its_root(self, pipeline):
        from repro.errors import RateLimitedError
        from repro.service import RateLimit

        tracer = Tracer()
        with SolverService(
            ArraySpec(W),
            n_shards=2,
            tracer=tracer,
            rate_limits={"bulk": RateLimit(rate=0.001, burst=1)},
        ) as service:
            service.submit_graph(pipeline, client_id="bulk").result(timeout=5.0)
            with pytest.raises(RateLimitedError):
                service.submit_graph(pipeline, client_id="bulk")
        assert tracer.open_spans == 0
        graph_roots = [
            r for r in _roots(tracer.spans()) if r.name == "request graph"
        ]
        assert sorted(r.status for r in graph_roots) == ["error", "ok"]

    def test_priority_shed_closes_the_victims_root(self, rng, monkeypatch):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        tracer = Tracer()
        service = SolverService(
            ArraySpec(W),
            n_shards=1,
            queue_depth=1,
            backpressure="shed_oldest",
            max_batch_size=1,
            max_batch_delay=0.0,
            idle_poll=0.01,
            tracer=tracer,
        )
        gate = threading.Event()
        shard_solver = service.shards[0].solver
        original = shard_solver.solve

        def gated(*args, **kwargs):
            gate.wait(timeout=30)
            return original(*args, **kwargs)

        monkeypatch.setattr(shard_solver, "solve", gated)
        try:
            first = service.submit("matvec", a, x, priority="high")
            deadline = time.monotonic() + 2.0
            while len(service.shards[0].queue) and time.monotonic() < deadline:
                time.sleep(0.002)
            low = service.submit("matvec", a, x, priority="low")
            high = service.submit("matvec", a, x, priority="high")
            with pytest.raises(ServiceOverloadedError, match="class low"):
                low.result(timeout=5.0)
            gate.set()
            first.result(timeout=5.0)
            high.result(timeout=5.0)
        finally:
            gate.set()
            service.close()
        assert tracer.open_spans == 0
        roots = _roots(tracer.spans())
        assert sorted(r.status for r in roots) == ["error", "ok", "ok"]
        shed_root = next(r for r in roots if r.status == "error")
        assert "ServiceOverloadedError" in shed_root.error
        assert shed_root.args.get("priority") == "low"
        # Telemetry agrees with the trace.
        assert service.stats().shed_by_priority == {"low": 1}
