"""Unit tests for partial-result placement, feedback planning and recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operands import MatMulOperands
from repro.core.recovery import (
    PartialResultMap,
    classify_feedback_delays,
)
from repro.errors import RecoveryError
from repro.systolic.feedback import ExternalSource
from repro.systolic.hex_array import HexFeedbackSource, HexagonalArray


@pytest.fixture
def placement_case(rng):
    a = rng.uniform(-1.0, 1.0, size=(6, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 6))
    operands = MatMulOperands(a, b, 3)
    return PartialResultMap(operands), operands, a, b


class TestChains:
    def test_every_padded_element_has_a_chain(self, placement_case):
        placement, operands, _a, _b = placement_case
        chains = placement.chains
        expected = {
            (alpha, gamma)
            for alpha in range(operands.n_bar * 3)
            for gamma in range(operands.m_bar * 3)
        }
        assert set(chains) == expected

    def test_chain_positions_are_entry_ordered(self, placement_case):
        placement, operands, _a, _b = placement_case
        array = HexagonalArray(3, 3)
        a_band = operands.a_operand.band
        b_band = operands.b_operand.band
        for chain in placement.chains.values():
            entries = [
                array.c_token_window(a_band, b_band, *position)[0]
                for position in chain.positions
            ]
            assert entries == sorted(entries)

    def test_chain_lengths_are_at_least_p_bar(self, placement_case):
        placement, operands, _a, _b = placement_case
        for chain in placement.chains.values():
            assert chain.length >= operands.p_bar

    def test_chain_lookup_and_missing_target(self, placement_case):
        placement, _operands, _a, _b = placement_case
        chain = placement.chain(0, 0)
        assert chain.target == (0, 0)
        with pytest.raises(RecoveryError):
            placement.chain(100, 0)

    def test_chain_length_histogram(self, placement_case):
        placement, _operands, _a, _b = placement_case
        histogram = placement.chain_lengths()
        assert sum(histogram.values()) == len(placement.chains)
        assert all(length >= 1 for length in histogram)

    def test_tail_corner_positions_are_excluded(self, placement_case):
        placement, operands, _a, _b = placement_case
        tail = operands.full_block_count * 3
        for chain in placement.chains.values():
            for (i, j) in chain.positions:
                assert not (i >= tail and j >= tail)


class TestTokenPlan:
    def test_plan_contains_feedback_for_every_non_initial_position(self, placement_case):
        placement, _operands, _a, _b = placement_case
        e = np.ones((6, 6))
        plan = placement.build_token_plan(e)
        feedback_count = sum(
            isinstance(source, HexFeedbackSource) for source in plan.sources.values()
        )
        expected = sum(chain.length - 1 for chain in placement.chains.values())
        assert feedback_count == expected

    def test_plan_injects_e_at_chain_heads(self, placement_case):
        placement, _operands, _a, _b = placement_case
        e = np.full((6, 6), 2.0)
        plan = placement.build_token_plan(e)
        heads = {chain.positions[0] for chain in placement.chains.values()}
        external = {
            position
            for position, source in plan.sources.items()
            if isinstance(source, ExternalSource)
        }
        assert external <= heads
        assert len(external) == 36  # every original element has a nonzero addend

    def test_plan_without_e_has_no_external_sources(self, placement_case):
        placement, _operands, _a, _b = placement_case
        plan = placement.build_token_plan(None)
        assert not any(
            isinstance(source, ExternalSource) for source in plan.sources.values()
        )

    def test_plan_validates_e_shape(self, placement_case):
        placement, _operands, _a, _b = placement_case
        with pytest.raises(RecoveryError):
            placement.build_token_plan(np.ones((3, 3)))

    def test_feedback_targets_cover_non_head_positions(self, placement_case):
        placement, _operands, _a, _b = placement_case
        targets = placement.feedback_targets()
        expected = sum(chain.length - 1 for chain in placement.chains.values())
        assert len(targets) == expected


class TestRecovery:
    def test_recover_c_reads_final_positions(self, placement_case):
        placement, operands, a, b = placement_case
        array = HexagonalArray(3, 3)
        plan = placement.build_token_plan(None)
        run = array.run(operands.a_operand.band, operands.b_operand.band, c_plan=plan)
        c = placement.recover_c(run.c_band)
        assert np.allclose(c, a @ b)

    def test_final_positions_unique(self, placement_case):
        placement, _operands, _a, _b = placement_case
        finals = placement.final_positions()
        assert len(set(finals.values())) == len(finals)


class TestFeedbackClassification:
    def test_split_by_threshold(self):
        delays = {(0, 0): 5, (1, 1): 7, (2, 2): 40}
        targets = {(0, 0): (0, 0), (1, 1): (0, 1), (2, 2): (5, 0)}
        classification = classify_feedback_delays(delays, targets, w=3)
        assert classification.regular_threshold == 9
        assert classification.regular_count == 2
        assert classification.irregular_count == 1
        assert classification.max_regular_delay == 7
        assert classification.max_irregular_delay == 40
        assert classification.irregular[0] == ((5, 0), 40)

    def test_empty_delays(self):
        classification = classify_feedback_delays({}, {}, w=4)
        assert classification.regular_count == 0
        assert classification.irregular_count == 0
        assert classification.max_regular_delay == 0
        assert classification.max_irregular_delay == 0

    def test_irregular_targets_belong_to_first_or_last_block_row(self, placement_case):
        """The paper's claim: irregular feedback only arises for the U_{0,j}
        and L_{n_bar-1,j} blocks, i.e. the first and last original block rows."""
        placement, operands, _a, _b = placement_case
        array = HexagonalArray(3, 3)
        plan = placement.build_token_plan(None)
        run = array.run(operands.a_operand.band, operands.b_operand.band, c_plan=plan)
        classification = classify_feedback_delays(
            run.feedback_delays, placement.feedback_targets(), operands.w
        )
        w, n_bar = operands.w, operands.n_bar
        for (alpha, _gamma), _delay in classification.irregular:
            block_row = alpha // w
            assert block_row in (0, n_bar - 1)
