"""Unit tests for ``repro.matrices.padding``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArraySizeError, ShapeError
from repro.matrices.padding import (
    block_count,
    crop_matrix,
    crop_vector,
    pad_matrix,
    pad_vector,
    padded_size,
    validate_array_size,
)


class TestValidateArraySize:
    def test_accepts_positive_integers(self):
        assert validate_array_size(1) == 1
        assert validate_array_size(17) == 17

    def test_accepts_numpy_integers(self):
        assert validate_array_size(np.int64(4)) == 4

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ArraySizeError):
            validate_array_size(0)
        with pytest.raises(ArraySizeError):
            validate_array_size(-3)

    def test_rejects_non_integers(self):
        with pytest.raises(ArraySizeError):
            validate_array_size(2.5)
        with pytest.raises(ArraySizeError):
            validate_array_size("3")


class TestBlockCount:
    def test_exact_multiple(self):
        assert block_count(9, 3) == 3

    def test_rounds_up(self):
        assert block_count(10, 3) == 4
        assert block_count(1, 5) == 1

    def test_rejects_non_positive_dimension(self):
        with pytest.raises(ShapeError):
            block_count(0, 3)

    def test_padded_size(self):
        assert padded_size(10, 3) == 12
        assert padded_size(9, 3) == 9


class TestPadMatrix:
    def test_no_padding_needed_returns_copy(self):
        matrix = np.arange(9, dtype=float).reshape(3, 3)
        padded = pad_matrix(matrix, 3)
        assert padded.shape == (3, 3)
        assert np.array_equal(padded, matrix)
        padded[0, 0] = 99.0
        assert matrix[0, 0] == 0.0

    def test_pads_rows_and_columns_with_zeros(self):
        matrix = np.ones((4, 5))
        padded = pad_matrix(matrix, 3)
        assert padded.shape == (6, 6)
        assert np.array_equal(padded[:4, :5], matrix)
        assert np.all(padded[4:, :] == 0.0)
        assert np.all(padded[:, 5:] == 0.0)

    def test_rejects_vectors(self):
        with pytest.raises(ShapeError):
            pad_matrix(np.ones(4), 2)

    def test_crop_roundtrip(self):
        matrix = np.arange(20, dtype=float).reshape(4, 5)
        padded = pad_matrix(matrix, 3)
        assert np.array_equal(crop_matrix(padded, 4, 5), matrix)

    def test_crop_rejects_growing(self):
        with pytest.raises(ShapeError):
            crop_matrix(np.ones((2, 2)), 3, 2)


class TestPadVector:
    def test_pads_with_zeros(self):
        vector = np.array([1.0, 2.0, 3.0, 4.0])
        padded = pad_vector(vector, 3)
        assert padded.shape == (6,)
        assert np.array_equal(padded[:4], vector)
        assert np.all(padded[4:] == 0.0)

    def test_no_padding_returns_copy(self):
        vector = np.array([1.0, 2.0, 3.0])
        padded = pad_vector(vector, 3)
        padded[0] = 7.0
        assert vector[0] == 1.0

    def test_rejects_matrices(self):
        with pytest.raises(ShapeError):
            pad_vector(np.ones((2, 2)), 2)

    def test_crop_roundtrip(self):
        vector = np.arange(5, dtype=float)
        assert np.array_equal(crop_vector(pad_vector(vector, 4), 5), vector)

    def test_crop_rejects_growing(self):
        with pytest.raises(ShapeError):
            crop_vector(np.ones(3), 4)
