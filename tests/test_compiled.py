"""The compiled backend: lowered kernels, kernel cache, epilogue fusion.

Three layers of contract:

* **kernels** — :class:`~repro.compiled.lowering.CompiledLinearPlan`
  must be bit-identical to the vectorized
  :class:`~repro.backends.vectorized.LinearSweepPlan` it replaces, for
  the float sweep and the int8 sweep alike, across a (w, shape) grid;
* **cache** — lowering is memoized per geometry in a thread-safe LRU
  whose stats are observable;
* **fusion** — head→epilogue chains collapse into single fused stages
  with values bit-identical to the unfused pipeline, and the rewrite
  refuses every unsafe shape (multi-consumer heads, per-node options,
  intermediate outputs);

plus persistence: compiled and fused plans round-trip through
:class:`~repro.store.PlanStore` and fail open to recompilation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.backends.vectorized import LinearSweepPlan, build_linear_run
from repro.compiled import (
    CompiledLinearPlan,
    KernelCache,
    NUMBA_AVAILABLE,
    NUMBA_DISABLE_ENV,
    kernel_cache,
    lower_linear_plan,
    numba_enabled,
)
from repro.compiled.fusion import Fused, fuse_epilogue_chains
from repro.graph import Graph, GraphCompiler
from repro.nn import Bias, Dense, Dequantize, Quantize, Relu
from repro.store import PlanStore


def compiled_solver(w: int, **overrides) -> Solver:
    return Solver(
        ArraySpec(w=w),
        options=ExecutionOptions(backend="compiled", **overrides),
    )


def geometry(w: int, n: int, m: int):
    """(n_bar, m_bar) of the padded band geometry, as the plans compute it."""
    n_bar = -(-n // w)
    m_bar = -(-m // w)
    return n_bar, m_bar


SHAPES = [(1, 1), (3, 5), (7, 4), (16, 16), (33, 29)]


class TestCompiledLinearKernels:
    """The lowered sweeps against the vectorized reference, bit for bit."""

    @pytest.mark.parametrize("w", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("with_b", [False, True])
    def test_float_sweep_bit_identical(self, w, shape, with_b):
        n, m = shape
        n_bar, m_bar = geometry(w, n, m)
        useful = n * m
        reference = LinearSweepPlan(w, n, m, n_bar, m_bar, useful)
        compiled = CompiledLinearPlan(w, n, m, n_bar, m_bar, useful)
        rng = np.random.default_rng(n * 100 + m)
        a = rng.standard_normal((n, m))
        x = rng.standard_normal(m)
        b = rng.standard_normal(n) if with_b else None
        ref_bands, ref_y = reference.sweep(a, x, b)
        got_bands, got_y = compiled.sweep(a, x, b)
        assert np.array_equal(got_y, ref_y)
        assert np.array_equal(got_bands, ref_bands)
        assert got_y.dtype == ref_y.dtype
        assert got_bands.dtype == ref_bands.dtype

    @pytest.mark.parametrize("w", [1, 2, 3, 4, 8])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_int_sweep_bit_identical(self, w, shape):
        n, m = shape
        n_bar, m_bar = geometry(w, n, m)
        reference = LinearSweepPlan(w, n, m, n_bar, m_bar, n * m)
        compiled = CompiledLinearPlan(w, n, m, n_bar, m_bar, n * m)
        rng = np.random.default_rng(n * 100 + m + 7)
        a = rng.integers(-128, 128, size=(n, m)).astype(np.int32)
        x = rng.integers(-128, 128, size=m).astype(np.int32)
        b = rng.integers(-1000, 1000, size=n).astype(np.int32)
        for bias in (None, b):
            ref_bands, ref_y = reference.int_sweep(a, x, bias)
            got_bands, got_y = compiled.int_sweep(a, x, bias)
            assert np.array_equal(got_y, ref_y)
            assert np.array_equal(got_bands, ref_bands)
            assert got_y.dtype == ref_y.dtype

    def test_int_sweep_rejects_float_operands(self):
        plan = CompiledLinearPlan(2, 4, 4, 2, 2, 16)
        with pytest.raises(TypeError, match="integer operands"):
            plan.int_sweep(np.ones((4, 4)), np.arange(4), None)

    def test_structural_metrics_match_parent(self):
        """Same geometry and metrics: build_linear_run works unchanged."""
        reference = LinearSweepPlan(3, 7, 5, 3, 2, 35)
        compiled = CompiledLinearPlan(3, 7, 5, 3, 2, 35)
        assert compiled.band_rows == reference.band_rows
        assert compiled.mac_operations == reference.mac_operations
        assert compiled.useful_operations == reference.useful_operations
        assert compiled.feedback_events(0) == reference.feedback_events(0)
        rng = np.random.default_rng(5)
        a = rng.standard_normal((7, 5))
        x = rng.standard_normal(5)
        bands, _y = compiled.sweep(a, x, None)
        run = build_linear_run(3, [compiled], [bands])
        ref_bands, _ = reference.sweep(a, x, None)
        ref_run = build_linear_run(3, [reference], [ref_bands])
        assert run.total_cycles == ref_run.total_cycles

    def test_compiled_plan_is_picklable(self):
        import pickle

        plan = lower_linear_plan(w=3, n=7, m=5, n_bar=3, m_bar=2,
                                 useful_operations=35)
        clone = pickle.loads(pickle.dumps(plan))
        rng = np.random.default_rng(9)
        a = rng.standard_normal((7, 5))
        x = rng.standard_normal(5)
        assert np.array_equal(clone.sweep(a, x, None)[1],
                              plan.sweep(a, x, None)[1])


class TestNumbaGating:
    def test_numba_disable_env_vetoes(self, monkeypatch):
        monkeypatch.setenv(NUMBA_DISABLE_ENV, "1")
        assert not numba_enabled()
        monkeypatch.setenv(NUMBA_DISABLE_ENV, "")
        assert numba_enabled() == NUMBA_AVAILABLE

    def test_numpy_fallback_always_works(self, monkeypatch):
        """The pure-NumPy body must carry the full contract on its own."""
        monkeypatch.setenv(NUMBA_DISABLE_ENV, "true")
        plan = CompiledLinearPlan(4, 9, 9, 3, 3, 81)
        reference = LinearSweepPlan(4, 9, 9, 3, 3, 81)
        rng = np.random.default_rng(11)
        a = rng.standard_normal((9, 9))
        x = rng.standard_normal(9)
        b = rng.standard_normal(9)
        assert np.array_equal(plan.sweep(a, x, b)[1],
                              reference.sweep(a, x, b)[1])

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_body_matches_numpy_body(self, monkeypatch):
        """With Numba importable, both bodies must agree bit for bit."""
        plan = CompiledLinearPlan(4, 17, 13, 5, 4, 17 * 13)
        rng = np.random.default_rng(13)
        a = rng.standard_normal((17, 13))
        x = rng.standard_normal(13)
        b = rng.standard_normal(17)
        monkeypatch.setenv(NUMBA_DISABLE_ENV, "1")
        numpy_bands, numpy_y = plan.sweep(a, x, b)
        monkeypatch.setenv(NUMBA_DISABLE_ENV, "")
        assert numba_enabled()
        numba_bands, numba_y = plan.sweep(a, x, b)
        assert np.array_equal(numba_y, numpy_y)
        assert np.array_equal(numba_bands, numpy_bands)


class TestKernelCache:
    def test_lowering_is_memoized_per_geometry(self):
        first = lower_linear_plan(w=3, n=8, m=6, n_bar=3, m_bar=2,
                                  useful_operations=48)
        second = lower_linear_plan(w=3, n=8, m=6, n_bar=3, m_bar=2,
                                   useful_operations=48)
        other = lower_linear_plan(w=3, n=8, m=7, n_bar=3, m_bar=3,
                                  useful_operations=56)
        assert first is second
        assert other is not first
        assert kernel_cache.stats.hits >= 1

    def test_cache_stats_and_clear(self):
        cache = KernelCache(maxsize=2)
        built = []

        def build(tag):
            def factory():
                built.append(tag)
                return object()
            return factory

        a = cache.lowered(("k", 1), build("a"))
        assert cache.lowered(("k", 1), build("a2")) is a
        cache.lowered(("k", 2), build("b"))
        cache.lowered(("k", 3), build("c"))  # evicts ("k", 1)
        stats = cache.stats
        assert stats.hits == 1 and stats.misses == 3
        assert stats.evictions == 1 and stats.size == 2
        assert built == ["a", "b", "c"]
        cache.clear()
        assert cache.stats.size == 0

    def test_hex_lowering_shares_geometry(self, rng):
        """Two independent solvers share one lowered matmul skeleton."""
        a = rng.standard_normal((6, 5))
        b = rng.standard_normal((5, 4))
        compiled_solver(2).solve("matmul", a, b)
        hits_after_first = kernel_cache.stats.hits
        # A fresh solver cannot hit its own plan cache, so building the
        # same-geometry plan again must reuse the process-wide kernel.
        compiled_solver(2).solve("matmul", a, b)
        assert kernel_cache.stats.hits > hits_after_first


class TestEpilogueFusion:
    """Graph-level fusion: value-exact, conservative, observable."""

    N, M = 24, 20

    def _operands(self, seed=0):
        rng = np.random.default_rng(seed)
        return (
            rng.standard_normal((self.N, self.M)),
            rng.standard_normal(self.M),
            rng.standard_normal(self.N),
        )

    def _mlp(self, W, x, b):
        d = Dense(W, x, name="dense")
        return Graph(y=Relu(Bias(d, b, name="biased"), name="act"))

    def test_float_chain_fuses_and_matches_unfused(self):
        W, x, b = self._operands()
        solver = compiled_solver(4)
        program = GraphCompiler(solver).compile(self._mlp(W, x, b))
        assert len(program.stages) == 1
        assert program.fused_epilogues == 1
        assert program.stages[0].kind == "fused"
        result = program.run()
        assert result.fused_epilogues == 1
        solution = result.solutions[0]
        assert solution.stats["fused_kinds"] == "dense+bias+relu"
        assert solution.stats["fused_stages"] == 3

        unfused = GraphCompiler(solver, fuse_epilogues=False).compile(
            self._mlp(W, x, b)
        )
        assert len(unfused.stages) == 3 and unfused.fused_epilogues == 0
        assert np.array_equal(result.values, unfused.run().values)

    @pytest.mark.parametrize("backend", ["simulate", "vectorized"])
    def test_fused_matches_other_backends(self, backend):
        W, x, b = self._operands(1)
        fused = GraphCompiler(compiled_solver(3)).compile(
            self._mlp(W, x, b)
        ).run()
        reference = GraphCompiler(
            Solver(ArraySpec(w=3), options=ExecutionOptions(backend=backend))
        ).compile(self._mlp(W, x, b)).run()
        assert np.array_equal(fused.values, reference.values)

    def test_int8_datapath_fuses_whole_chain(self):
        rng = np.random.default_rng(3)
        Wq = rng.integers(-100, 100, size=(self.N, self.M)).astype(np.int8)
        xq = rng.integers(-100, 100, size=self.M).astype(np.int8)
        b = rng.standard_normal(self.N)

        def graph():
            d = Dense(Wq, xq, x_zero_point=2, dtype_mode="int8", name="dense")
            chain = Quantize(
                Relu(Bias(Dequantize(d, 0.03), b), name="act"), 0.1, 3,
                name="codes",
            )
            return Graph(out=chain)

        program = GraphCompiler(compiled_solver(4)).compile(graph())
        assert len(program.stages) == 1 and program.fused_epilogues == 1
        result = program.run()
        solution = result.solutions[0]
        assert solution.stats["fused_kinds"] == (
            "dense+dequantize+bias+relu+quantize"
        )
        assert solution.stats["dtype_mode"] == "int8"
        reference = GraphCompiler(
            Solver(ArraySpec(w=4), options=ExecutionOptions(backend="simulate"))
        ).compile(graph()).run()
        assert result.values.dtype == np.int8
        assert np.array_equal(result.values, reference.values)

    def test_multi_consumer_head_does_not_fuse(self):
        W, x, b = self._operands(4)

        def graph():
            d = Dense(W, x, name="dense")
            return Graph(a=Relu(d, name="r"), c=Bias(d, b, name="bi"))

        program = GraphCompiler(compiled_solver(3)).compile(graph())
        assert program.fused_epilogues == 0 and len(program.stages) == 3
        result = program.run()
        reference = GraphCompiler(
            Solver(ArraySpec(w=3), options=ExecutionOptions(backend="simulate"))
        ).compile(graph()).run()
        assert np.array_equal(result.output("a"), reference.output("a"))
        assert np.array_equal(result.output("c"), reference.output("c"))

    def test_intermediate_output_splits_chain(self):
        """An observed intermediate becomes a fused tail, never invisible."""
        W, x, b = self._operands(5)

        def graph():
            d = Dense(W, x, name="dense")
            bi = Bias(d, b, name="biased")
            return Graph(mid=bi, out=Relu(bi, name="act"))

        program = GraphCompiler(compiled_solver(3)).compile(graph())
        # dense->bias fuses (bias is the tail *and* an output); relu stays.
        assert program.fused_epilogues == 1 and len(program.stages) == 2
        result = program.run()
        reference = GraphCompiler(
            Solver(ArraySpec(w=3), options=ExecutionOptions(backend="simulate"))
        ).compile(graph()).run()
        assert np.array_equal(result.output("mid"), reference.output("mid"))
        assert np.array_equal(result.output("out"), reference.output("out"))

    def test_per_node_options_block_fusion(self):
        W, x, b = self._operands(6)
        d = Dense(W, x, name="dense")
        bi = Bias(
            d, b, name="biased",
            options=ExecutionOptions(backend="vectorized"),
        )
        program = GraphCompiler(compiled_solver(3)).compile(
            Graph(y=Relu(bi, name="act"))
        )
        assert program.fused_epilogues == 0 and len(program.stages) == 3

    def test_cross_chain_reference_remaps(self):
        """A bias vector produced by another fused chain's tail."""
        W, x, _b = self._operands(7)

        def graph():
            r1 = Relu(Dense(W, x, name="d1"), name="r1")
            b2 = Bias(Dense(W, x, name="d2"), r1, name="b2")
            return Graph(out=b2)

        program = GraphCompiler(compiled_solver(3)).compile(graph())
        assert program.fused_epilogues == 2 and len(program.stages) == 2
        result = program.run()
        reference = GraphCompiler(
            Solver(ArraySpec(w=3), options=ExecutionOptions(backend="simulate"))
        ).compile(graph()).run()
        assert np.array_equal(result.values, reference.values)

    def test_fuse_epilogues_opt_in_for_other_backends(self):
        W, x, b = self._operands(8)
        solver = Solver(
            ArraySpec(w=3), options=ExecutionOptions(backend="vectorized")
        )
        program = GraphCompiler(solver, fuse_epilogues=True).compile(
            self._mlp(W, x, b)
        )
        assert program.fused_epilogues == 1
        reference = GraphCompiler(solver).compile(self._mlp(W, x, b))
        assert reference.fused_epilogues == 0
        assert np.array_equal(program.run().values, reference.run().values)

    def test_rewrite_returns_graph_unchanged_when_nothing_fuses(self):
        W, x, _b = self._operands(9)
        graph = Graph(y=Dense(W, x, name="dense"))
        rewritten, count = fuse_epilogue_chains(graph)
        assert rewritten is graph and count == 0

    def test_fused_node_plan_key_is_stable(self):
        W, x, b = self._operands(10)
        d = Dense(W, x, name="dense")
        bi = Bias(d, b)
        node = Fused((d, bi, Relu(bi)))
        # plan_shapes normalizes the composite spec through the handler
        assert node.plan_shapes() == (
            ("dense", (self.N, self.M)),
            ("bias", (self.N,)),
            ("relu", (self.N,)),
        )

    def test_describe_reports_fusion(self):
        W, x, b = self._operands(11)
        program = GraphCompiler(compiled_solver(3)).compile(self._mlp(W, x, b))
        assert "1 fused epilogue group(s)" in program.describe()
        assert "1 fused epilogue group(s)" in program.run().describe()


class TestCompiledPersistence:
    W = 3

    def test_compiled_plan_round_trips_through_store(self, tmp_path, rng):
        a = rng.standard_normal((9, 7))
        x = rng.standard_normal(7)
        writer = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=PlanStore(tmp_path),
        )
        first = writer.solve("matvec", a, x)
        reader = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=PlanStore(tmp_path, readonly=True),
        )
        second = reader.solve("matvec", a, x)
        assert np.array_equal(second.values, first.values)
        assert reader.store.stats.hits == 1

    def test_fused_plan_round_trips_through_store(self, tmp_path, rng):
        a = rng.standard_normal((12, 10))
        x = rng.standard_normal(10)
        b = rng.standard_normal(12)

        def graph():
            d = Dense(a, x, name="dense")
            return Graph(y=Relu(Bias(d, b), name="act"))

        writer = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=PlanStore(tmp_path),
        )
        first = GraphCompiler(writer).compile(graph()).run()
        store = PlanStore(tmp_path, readonly=True)
        assert any(key[0] == "fused" for key in store.keys())
        reader = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=store,
        )
        program = GraphCompiler(reader).compile(graph())
        assert program.compile_plan_builds == 0  # warm from the store
        assert np.array_equal(program.run().values, first.values)

    def test_corrupt_artifact_fails_open_to_recompile(self, tmp_path, rng):
        a = rng.standard_normal((6, 6))
        x = rng.standard_normal(6)
        store = PlanStore(tmp_path)
        writer = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=store,
        )
        expected = writer.solve("matvec", a, x)
        for artifact in tmp_path.iterdir():
            artifact.write_bytes(b"garbage")
        reader = Solver(
            ArraySpec(self.W),
            options=ExecutionOptions(backend="compiled"),
            store=PlanStore(tmp_path),
        )
        solution = reader.solve("matvec", a, x)
        assert np.array_equal(solution.values, expected.values)
        assert reader.store.stats.errors >= 1
