"""Unit tests for ``repro.matrices.banded``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import BandwidthError, ShapeError
from repro.matrices.banded import BandMatrix


def make_band_dense(rows, cols, lower, upper, rng):
    """Random dense matrix with entries only inside the requested band."""
    dense = rng.uniform(-1.0, 1.0, size=(rows, cols))
    i = np.arange(rows)[:, None]
    j = np.arange(cols)[None, :]
    mask = (j - i >= -lower) & (j - i <= upper)
    return dense * mask


class TestConstruction:
    def test_basic_geometry(self):
        band = BandMatrix(5, 7, lower=1, upper=2)
        assert band.shape == (5, 7)
        assert band.bandwidth == 4
        assert list(band.offsets()) == [-1, 0, 1, 2]

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ShapeError):
            BandMatrix(0, 3, 0, 0)
        with pytest.raises(BandwidthError):
            BandMatrix(3, 3, -1, 0)

    def test_from_dense_roundtrip(self, rng):
        dense = make_band_dense(6, 6, 1, 2, rng)
        band = BandMatrix.from_dense(dense, lower=1, upper=2)
        assert np.allclose(band.to_dense(), dense)

    def test_from_dense_rejects_out_of_band(self, rng):
        dense = make_band_dense(5, 5, 0, 1, rng)
        dense[4, 0] = 3.0
        with pytest.raises(BandwidthError):
            BandMatrix.from_dense(dense, lower=0, upper=1)

    def test_from_dense_without_check_drops_outside(self, rng):
        dense = rng.uniform(1.0, 2.0, size=(4, 4))
        band = BandMatrix.from_dense(dense, lower=0, upper=0, check=False)
        recovered = band.to_dense()
        assert np.allclose(np.diag(recovered), np.diag(dense))
        assert recovered[1, 0] == 0.0

    def test_upper_and_lower_band_constructors(self, rng):
        dense = np.triu(rng.uniform(-1, 1, (5, 5)))
        dense = dense * (np.arange(5)[None, :] - np.arange(5)[:, None] <= 2)
        upper = BandMatrix.upper_band_from_dense(dense, bandwidth=3)
        assert upper.lower == 0 and upper.upper == 2
        lower = BandMatrix.lower_band_from_dense(dense.T, bandwidth=3)
        assert lower.lower == 2 and lower.upper == 0

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(BandwidthError):
            BandMatrix.upper_band_from_dense(np.eye(3), bandwidth=0)


class TestElementAccess:
    def test_get_set_in_band(self):
        band = BandMatrix(4, 4, lower=1, upper=1)
        band.set(2, 3, 5.0)
        assert band.get(2, 3) == 5.0

    def test_get_outside_band_is_zero(self):
        band = BandMatrix(4, 4, lower=0, upper=1)
        assert band.get(3, 0) == 0.0

    def test_set_outside_band_raises(self):
        band = BandMatrix(4, 4, lower=0, upper=1)
        with pytest.raises(BandwidthError):
            band.set(3, 0, 1.0)

    def test_out_of_shape_raises(self):
        band = BandMatrix(3, 3, lower=1, upper=1)
        with pytest.raises(ShapeError):
            band.get(3, 0)
        with pytest.raises(ShapeError):
            band.set(0, 5, 1.0)

    def test_in_band_predicate(self):
        band = BandMatrix(4, 6, lower=1, upper=2)
        assert band.in_band(2, 1)
        assert band.in_band(2, 4)
        assert not band.in_band(2, 0)
        assert not band.in_band(0, 3)
        assert not band.in_band(-1, 0)

    def test_diagonal_get_and_set(self, rng):
        band = BandMatrix(5, 5, lower=1, upper=1)
        values = rng.uniform(size=4)
        band.set_diagonal(-1, values)
        assert np.array_equal(band.diagonal(-1), values)
        with pytest.raises(BandwidthError):
            band.diagonal(3)
        with pytest.raises(ShapeError):
            band.set_diagonal(0, np.ones(3))

    def test_band_positions_count(self):
        band = BandMatrix(4, 4, lower=1, upper=1)
        # diag 4 + sub 3 + super 3
        assert band.band_positions() == 10
        assert band.band_mask().sum() == 10


class TestConversionsAndOps:
    def test_transpose_swaps_bands(self, rng):
        dense = make_band_dense(5, 7, 1, 2, rng)
        band = BandMatrix.from_dense(dense, lower=1, upper=2)
        transposed = band.transpose()
        assert transposed.shape == (7, 5)
        assert transposed.lower == 2 and transposed.upper == 1
        assert np.allclose(transposed.to_dense(), dense.T)

    def test_copy_and_equality(self, rng):
        dense = make_band_dense(5, 5, 1, 1, rng)
        band = BandMatrix.from_dense(dense, lower=1, upper=1)
        clone = band.copy()
        assert clone == band
        clone.set(0, 0, 99.0)
        assert clone != band
        assert band != "not a band"  # NotImplemented path falls back to False

    def test_matvec_matches_dense(self, rng):
        dense = make_band_dense(6, 8, 2, 1, rng)
        band = BandMatrix.from_dense(dense, lower=2, upper=1)
        x = rng.uniform(-1, 1, 8)
        b = rng.uniform(-1, 1, 6)
        assert np.allclose(band.matvec(x), dense @ x)
        assert np.allclose(band.matvec(x, b), dense @ x + b)

    def test_matvec_validates_shapes(self, rng):
        band = BandMatrix.from_dense(np.eye(4), lower=0, upper=0)
        with pytest.raises(ShapeError):
            band.matvec(np.ones(5))
        with pytest.raises(ShapeError):
            band.matvec(np.ones(4), np.ones(3))

    def test_matmul_matches_dense_and_band_grows(self, rng):
        a_dense = make_band_dense(6, 6, 0, 2, rng)
        b_dense = make_band_dense(6, 6, 2, 0, rng)
        a = BandMatrix.from_dense(a_dense, lower=0, upper=2)
        b = BandMatrix.from_dense(b_dense, lower=2, upper=0)
        c = a.matmul(b)
        assert np.allclose(c.to_dense(), a_dense @ b_dense)
        assert c.lower == 2 and c.upper == 2

    def test_matmul_validates_operands(self):
        a = BandMatrix.from_dense(np.eye(3), 0, 0)
        b = BandMatrix.from_dense(np.eye(4), 0, 0)
        with pytest.raises(ShapeError):
            a.matmul(b)
        with pytest.raises(ShapeError):
            a.matmul(np.eye(3))
