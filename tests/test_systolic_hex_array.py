"""Unit tests for the hexagonal band matrix-matrix array simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArraySizeError, FeedbackError, ShapeError
from repro.matrices.banded import BandMatrix
from repro.systolic.feedback import ExternalSource
from repro.systolic.hex_array import (
    CTokenPlan,
    HexFeedbackSource,
    HexagonalArray,
    HexRunResult,
)


def random_band(rng, size, lower, upper):
    dense = rng.uniform(-1.0, 1.0, size=(size, size))
    i = np.arange(size)[:, None]
    j = np.arange(size)[None, :]
    dense = dense * ((j - i >= -lower) & (j - i <= upper))
    return dense, BandMatrix.from_dense(dense, lower=lower, upper=upper)


class TestValidation:
    def test_operand_bandwidth_must_match_array(self, rng):
        _d, a = random_band(rng, 5, 0, 2)
        _d, b = random_band(rng, 5, 1, 0)
        with pytest.raises(ArraySizeError):
            HexagonalArray(3, 3).run(a, b)  # b has bandwidth 2, not 3

    def test_shape_compatibility(self, rng):
        _d, a = random_band(rng, 5, 0, 2)
        _d, b = random_band(rng, 6, 2, 0)
        with pytest.raises(ShapeError):
            HexagonalArray(3, 3).run(a, b)

    def test_processing_element_count(self):
        assert HexagonalArray(3).processing_elements == 9
        assert HexagonalArray(3, 4).processing_elements == 12


class TestBandProductCorrectness:
    @pytest.mark.parametrize("size,w", [(4, 2), (6, 3), (8, 3), (9, 4)])
    def test_upper_times_lower(self, rng, size, w):
        a_dense, a_band = random_band(rng, size, 0, w - 1)
        b_dense, b_band = random_band(rng, size, w - 1, 0)
        result = HexagonalArray(w, w).run(a_band, b_band, verify_occupancy=True)
        assert np.allclose(result.c_band.to_dense(), a_dense @ b_dense)

    def test_general_bands(self, rng):
        a_dense, a_band = random_band(rng, 7, 1, 1)
        b_dense, b_band = random_band(rng, 7, 2, 1)
        result = HexagonalArray(3, 4).run(a_band, b_band, verify_occupancy=True)
        assert np.allclose(result.c_band.to_dense(), a_dense @ b_dense)

    def test_addend_enters_through_c_ports(self, rng):
        size, w = 6, 3
        a_dense, a_band = random_band(rng, size, 0, w - 1)
        b_dense, b_band = random_band(rng, size, w - 1, 0)
        e_dense, e_band = random_band(rng, size, w - 1, w - 1)
        plan = CTokenPlan.from_band(e_band)
        result = HexagonalArray(w, w).run(a_band, b_band, c_plan=plan)
        assert np.allclose(result.c_band.to_dense(), a_dense @ b_dense + e_dense)

    def test_tridiagonal_times_tridiagonal(self, rng):
        a_dense, a_band = random_band(rng, 8, 1, 1)
        b_dense, b_band = random_band(rng, 8, 1, 1)
        result = HexagonalArray(3, 3).run(a_band, b_band)
        assert np.allclose(result.c_band.to_dense(), a_dense @ b_dense)
        assert result.c_band.lower == 2 and result.c_band.upper == 2


class TestTimingAndMetrics:
    def test_c_stream_cycle_count(self, rng):
        # For bandwidth-w operands of dimension M the C stream spans
        # 3M + w - 2 steps under the simulator's schedule.
        for size, w in [(6, 3), (8, 2), (10, 4)]:
            _ad, a_band = random_band(rng, size, 0, w - 1)
            _bd, b_band = random_band(rng, size, w - 1, 0)
            result = HexagonalArray(w, w).run(a_band, b_band)
            assert result.c_stream_cycles == 3 * size + w - 2

    def test_total_cycles_cover_all_streams(self, rng):
        _ad, a_band = random_band(rng, 6, 0, 2)
        _bd, b_band = random_band(rng, 6, 2, 0)
        result = HexagonalArray(3, 3).run(a_band, b_band)
        assert result.total_cycles >= result.c_stream_cycles
        assert result.compute_cycles <= result.c_stream_cycles

    def test_mac_count_equals_band_product_terms(self, rng):
        _ad, a_band = random_band(rng, 6, 0, 2)
        _bd, b_band = random_band(rng, 6, 2, 0)
        result = HexagonalArray(3, 3).run(a_band, b_band)
        expected = 0
        for i in range(6):
            for k in range(i, min(6, i + 3)):
                expected += min(6, k + 1) - max(0, k - 2)
        assert result.report.mac_operations == expected

    def test_cell_busy_counts_sum_to_macs(self, rng):
        _ad, a_band = random_band(rng, 6, 0, 2)
        _bd, b_band = random_band(rng, 6, 2, 0)
        result = HexagonalArray(3, 3).run(a_band, b_band)
        assert sum(result.cell_busy.values()) == result.report.mac_operations
        # No cell index falls outside the w1 x w2 array.
        for (u, v) in result.cell_busy:
            assert 0 <= u <= 2 and -2 <= v <= 0

    def test_utilization_below_one_third_plus_epsilon(self, rng):
        _ad, a_band = random_band(rng, 20, 0, 2)
        _bd, b_band = random_band(rng, 20, 2, 0)
        result = HexagonalArray(3, 3).run(a_band, b_band)
        assert result.utilization <= 1.0 / 3.0 + 1e-9

    def test_token_windows_are_consistent(self, rng):
        _ad, a_band = random_band(rng, 5, 0, 1)
        _bd, b_band = random_band(rng, 5, 1, 0)
        array = HexagonalArray(2, 2)
        result = array.run(a_band, b_band)
        for position, entry in result.token_entry.items():
            assert result.token_exit[position] > entry
            window = array.c_token_window(a_band, b_band, *position)
            assert window == (entry, result.token_exit[position])


class TestFeedbackTokens:
    def test_feedback_value_carries_over(self, rng):
        size, w = 6, 2
        a_dense, a_band = random_band(rng, size, 0, w - 1)
        b_dense, b_band = random_band(rng, size, w - 1, 0)
        # Feed the output of token (0, 0) into token (2, 2): the late token
        # then accumulates its own products on top of the early result.
        plan = CTokenPlan()
        plan.sources[(0, 0)] = ExternalSource(value=2.5)
        plan.sources[(2, 2)] = HexFeedbackSource(source_row=0, source_col=0)
        result = HexagonalArray(w, w).run(a_band, b_band, c_plan=plan)
        product = a_dense @ b_dense
        assert result.c_band.get(0, 0) == pytest.approx(product[0, 0] + 2.5)
        assert result.c_band.get(2, 2) == pytest.approx(
            product[2, 2] + product[0, 0] + 2.5
        )

    def test_feedback_delay_is_recorded(self, rng):
        size, w = 6, 2
        _ad, a_band = random_band(rng, size, 0, w - 1)
        _bd, b_band = random_band(rng, size, w - 1, 0)
        plan = CTokenPlan()
        plan.sources[(2, 2)] = HexFeedbackSource(source_row=0, source_col=0)
        result = HexagonalArray(w, w).run(a_band, b_band, c_plan=plan)
        assert (2, 2) in result.feedback_delays
        assert result.feedback_delays[(2, 2)] > 0

    def test_infeasible_feedback_raises(self, rng):
        size, w = 6, 2
        _ad, a_band = random_band(rng, size, 0, w - 1)
        _bd, b_band = random_band(rng, size, w - 1, 0)
        plan = CTokenPlan()
        # Token (0, 0) cannot start from the output of a much later token.
        plan.sources[(0, 0)] = HexFeedbackSource(source_row=5, source_col=5)
        with pytest.raises(FeedbackError):
            HexagonalArray(w, w).run(a_band, b_band, c_plan=plan)

    def test_feedback_from_nonexistent_token_raises(self, rng):
        size, w = 4, 2
        _ad, a_band = random_band(rng, size, 0, w - 1)
        _bd, b_band = random_band(rng, size, w - 1, 0)
        plan = CTokenPlan()
        plan.sources[(3, 3)] = HexFeedbackSource(source_row=0, source_col=3)
        with pytest.raises(FeedbackError):
            HexagonalArray(w, w).run(a_band, b_band, c_plan=plan)

    def test_plan_from_band_skips_zeros(self, rng):
        _ed, e_band = random_band(rng, 4, 1, 1)
        e_band.set(0, 0, 0.0)
        plan = CTokenPlan.from_band(e_band)
        assert (0, 0) not in plan.sources
        assert all(isinstance(s, ExternalSource) for s in plan.sources.values())


class TestResultObject:
    def test_result_type_and_report(self, rng):
        _ad, a_band = random_band(rng, 4, 0, 1)
        _bd, b_band = random_band(rng, 4, 1, 0)
        result = HexagonalArray(2, 2).run(a_band, b_band, useful_operations=10)
        assert isinstance(result, HexRunResult)
        assert result.report.useful_operations == 10
        assert result.effective_utilization <= result.utilization
