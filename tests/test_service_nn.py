"""Quantized MLP inference through the serving layer.

Acceptance (ISSUE 6): multi-client int8 MLP graphs served through 4
shards are bit-identical to a single-threaded ``GraphCompiler`` run, the
whole forward pass rides one compiled pipeline per submission (warm after
the home shard's first build), and the fleet snapshot carries the new
graph metadata (depth and per-kind stage counts).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, Solver
from repro.graph import GraphCompiler
from repro.nn import MLP
from repro.service import SolverService

W = 4
SIZES = (6, 8, 5, 3)  # 3 layers -> 14-stage quantized graphs
N_CLIENT_INPUTS = 6


@pytest.fixture
def deployment(rng):
    """A calibrated 3-layer QuantizedMLP plus a batch of client inputs."""
    layers = [
        (
            rng.normal(size=(fan_out, fan_in)) / np.sqrt(fan_in),
            rng.normal(size=fan_out) * 0.1,
        )
        for fan_in, fan_out in zip(SIZES, SIZES[1:])
    ]
    mlp = MLP(layers)
    calibration = [rng.normal(size=SIZES[0]) for _ in range(8)]
    inputs = [rng.normal(size=SIZES[0]) for _ in range(N_CLIENT_INPUTS)]
    return mlp.quantized(calibration), inputs


class TestServiceNN:
    def test_sharded_inference_bit_identical_to_direct(self, deployment):
        qmlp, inputs = deployment
        reference = GraphCompiler(Solver(ArraySpec(W)))
        expected = [reference.run(qmlp.graph(x)).output("logits") for x in inputs]
        with SolverService(ArraySpec(W), n_shards=4) as service:
            futures = [service.submit_graph(qmlp.graph(x)) for x in inputs]
            results = [future.result(timeout=30) for future in futures]
        for result, logits in zip(results, expected):
            assert np.array_equal(result.output("logits"), logits)

    def test_resubmission_is_warm_on_home_shard(self, deployment):
        qmlp, inputs = deployment
        x = inputs[0]
        with SolverService(ArraySpec(W), n_shards=4) as service:
            cold = service.solve_graph(qmlp.graph(x))
            assert not cold.warm
            # Same shapes, fresh values: routed to the same home shard,
            # every one of the 14 stage plans is already resident.
            warm_results = [
                service.solve_graph(qmlp.graph(x2)) for x2 in inputs[1:]
            ]
        for warm in warm_results:
            assert warm.warm
            assert warm.plan_builds == 0 and warm.compile_plan_builds == 0

    def test_stats_carry_graph_depth_and_stage_kinds(self, deployment):
        qmlp, inputs = deployment
        n_graphs = len(inputs)
        with SolverService(ArraySpec(W), n_shards=4) as service:
            for x in inputs:
                service.solve_graph(qmlp.graph(x))
            stats = service.stats()
        assert stats.graphs == n_graphs
        assert stats.graph_stages == 14 * n_graphs
        # The quantized MLP graph is a pure chain: depth == stage count.
        assert stats.graph_levels == 14 * n_graphs
        assert stats.graph_stages_by_kind == {
            "quantize": 3 * n_graphs,
            "dense": 3 * n_graphs,
            "dequantize": 3 * n_graphs,
            "bias": 3 * n_graphs,
            "relu": 2 * n_graphs,
        }
        assert "stage kinds:" in stats.describe()

    def test_mixed_precision_clients_do_not_collide(self, deployment, rng):
        """Float and int8 graphs of the same network coexist in one fleet."""
        qmlp, inputs = deployment
        mlp = qmlp.mlp
        x = inputs[0]
        with SolverService(ArraySpec(W), n_shards=4) as service:
            int8_logits = service.solve_graph(qmlp.graph(x)).output("logits")
            float_logits = service.solve_graph(mlp.graph(x)).output("logits")
        reference = GraphCompiler(Solver(ArraySpec(W)))
        assert np.array_equal(
            int8_logits, reference.run(qmlp.graph(x)).output("logits")
        )
        assert np.array_equal(
            float_logits, reference.run(mlp.graph(x)).output("logits")
        )
        bounds = qmlp.error_bounds(x)["logits"]
        assert np.all(np.abs(int8_logits - float_logits) <= bounds + 1e-9)
