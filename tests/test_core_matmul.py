"""Integration-level tests of the size-independent matrix-matrix pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matmul import MatMulSolution, SizeIndependentMatMul
from repro.errors import ShapeError


class TestCorrectness:
    @pytest.mark.parametrize(
        "n,p,m,w",
        [
            (3, 3, 3, 3),   # single block in every dimension
            (6, 6, 9, 3),   # the Fig. 4 block structure
            (4, 5, 7, 3),   # padding in every dimension
            (2, 2, 2, 2),
            (6, 3, 3, 3),
            (4, 4, 4, 2),
            (5, 2, 3, 2),
            (3, 3, 3, 4),   # array larger than the problem
        ],
    )
    def test_matches_reference(self, rng, n, p, m, w):
        a = rng.uniform(-1.0, 1.0, size=(n, p))
        b = rng.uniform(-1.0, 1.0, size=(p, m))
        e = rng.uniform(-1.0, 1.0, size=(n, m))
        solution = SizeIndependentMatMul(w).solve(a, b, e)
        assert np.allclose(solution.c, a @ b + e)

    def test_without_addend(self, rng):
        a = rng.uniform(size=(4, 4))
        b = rng.uniform(size=(4, 4))
        solution = SizeIndependentMatMul(2).solve(a, b)
        assert np.allclose(solution.c, a @ b)

    def test_identity_and_zero_operands(self, rng):
        a = rng.uniform(size=(6, 6))
        identity = np.eye(6)
        assert np.allclose(SizeIndependentMatMul(3).solve(a, identity).c, a)
        zero = np.zeros((6, 6))
        assert np.allclose(SizeIndependentMatMul(3).solve(a, zero).c, 0.0)

    def test_structure_verification_path(self, rng):
        a = rng.uniform(size=(4, 4))
        b = rng.uniform(size=(4, 4))
        solution = SizeIndependentMatMul(2, verify_structure=True).solve(a, b)
        assert np.allclose(solution.c, a @ b)

    def test_shape_validation(self, rng):
        solver = SizeIndependentMatMul(3)
        with pytest.raises(ShapeError):
            solver.solve(rng.uniform(size=(3, 4)), rng.uniform(size=(3, 4)))
        with pytest.raises(ShapeError):
            solver.solve(
                rng.uniform(size=(3, 4)),
                rng.uniform(size=(4, 5)),
                rng.uniform(size=(3, 4)),
            )


class TestTimingAgainstPaper:
    @pytest.mark.parametrize(
        "n,p,m,w", [(3, 3, 3, 3), (6, 6, 9, 3), (4, 4, 4, 2), (8, 4, 4, 4), (6, 6, 6, 2)]
    )
    def test_measured_steps_equal_t5(self, rng, n, p, m, w):
        a = rng.uniform(size=(n, p))
        b = rng.uniform(size=(p, m))
        solution = SizeIndependentMatMul(w).solve(a, b)
        assert solution.measured_steps == solution.predicted_steps

    def test_utilization_tracks_t6_within_tail_overhead(self, rng):
        # The measured MAC count additionally includes the duplicated tail
        # corner, so the measured utilization sits slightly above the paper's
        # closed form and converges to it as the problem grows.
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 9))
        solution = SizeIndependentMatMul(3).solve(a, b)
        assert solution.measured_utilization == pytest.approx(
            solution.predicted_utilization, rel=0.05
        )
        assert solution.measured_utilization >= solution.predicted_utilization

    def test_utilization_stays_below_one_third(self, rng):
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 6))
        solution = SizeIndependentMatMul(3).solve(a, b)
        assert solution.measured_utilization < 1.0 / 3.0 + 0.02

    def test_feedback_is_used_and_recorded(self, rng):
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 6))
        solution = SizeIndependentMatMul(3).solve(a, b)
        assert len(solution.feedback_delays) > 0
        classification = solution.feedback_classification()
        assert classification.regular_count > 0

    def test_summary_reports_key_numbers(self, rng):
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 6))
        solution = SizeIndependentMatMul(3).solve(a, b)
        text = solution.summary()
        assert str(solution.predicted_steps) in text
        assert "feedback" in text

    def test_solution_type(self, rng):
        a = rng.uniform(size=(4, 4))
        b = rng.uniform(size=(4, 4))
        solution = SizeIndependentMatMul(2).solve(a, b)
        assert isinstance(solution, MatMulSolution)
        assert solution.w == 2


class TestFeedbackStructure:
    def test_regular_delays_do_not_grow_with_problem_size(self, rng):
        """T7: the regular feedback delay depends only on the array size."""
        maxima = []
        for m in (3, 6, 9):
            a = rng.uniform(size=(6, 6))
            b = rng.uniform(size=(6, m))
            solution = SizeIndependentMatMul(3).solve(a, b)
            classification = solution.feedback_classification()
            maxima.append(classification.max_regular_delay)
        assert maxima[0] == maxima[1] == maxima[2]

    def test_irregular_delays_grow_with_problem_size(self, rng):
        """T7: the irregular delays grow with the number of blocks."""
        small = SizeIndependentMatMul(3).solve(
            rng.uniform(size=(6, 6)), rng.uniform(size=(6, 6))
        )
        large = SizeIndependentMatMul(3).solve(
            rng.uniform(size=(6, 6)), rng.uniform(size=(6, 12))
        )
        assert (
            large.feedback_classification().max_irregular_delay
            > small.feedback_classification().max_irregular_delay
        )
