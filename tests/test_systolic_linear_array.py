"""Unit tests for the cycle-accurate linear contraflow array simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ArraySizeError, FeedbackError, ScheduleError, ShapeError
from repro.matrices.banded import BandMatrix
from repro.systolic.feedback import ExternalSource, FeedbackSource
from repro.systolic.linear_array import (
    LinearContraflowArray,
    LinearProblem,
    LinearRunResult,
)


def upper_band_problem(rng, rows, w, x=None, b=None):
    """A random upper-band problem of bandwidth w with external initial values."""
    cols = rows + w - 1
    dense = np.zeros((rows, cols))
    for i in range(rows):
        dense[i, i : i + w] = rng.uniform(-1.0, 1.0, size=w)
    band = BandMatrix.from_dense(dense, lower=0, upper=w - 1)
    x = rng.uniform(-1.0, 1.0, size=cols) if x is None else x
    b = np.zeros(rows) if b is None else b
    sources = [ExternalSource(value=float(b[i]), tag=("b", i)) for i in range(rows)]
    return dense, band, x, LinearProblem(band=band, x=x, y_sources=sources)


class TestProblemValidation:
    def test_x_length_must_match(self, rng):
        _dense, band, _x, _problem = upper_band_problem(rng, 4, 3)
        with pytest.raises(ShapeError):
            LinearProblem(band=band, x=np.ones(3), y_sources=[ExternalSource(0.0)] * 4)

    def test_y_sources_length_must_match(self, rng):
        _dense, band, x, _problem = upper_band_problem(rng, 4, 3)
        with pytest.raises(ShapeError):
            LinearProblem(band=band, x=x, y_sources=[ExternalSource(0.0)] * 3)

    def test_tag_lengths_must_match(self, rng):
        _dense, band, x, _problem = upper_band_problem(rng, 4, 3)
        with pytest.raises(ShapeError):
            LinearProblem(
                band=band, x=x, y_sources=[ExternalSource(0.0)] * 4, x_tags=[("x", 0)]
            )
        with pytest.raises(ShapeError):
            LinearProblem(
                band=band,
                x=x,
                y_sources=[ExternalSource(0.0)] * 4,
                output_tags=[("y", 0)],
            )

    def test_array_size_must_equal_bandwidth(self, rng):
        _dense, _band, _x, problem = upper_band_problem(rng, 4, 3)
        with pytest.raises(ArraySizeError):
            LinearContraflowArray(4).run(problem)


class TestBandMatVecCorrectness:
    @pytest.mark.parametrize("rows,w", [(3, 2), (5, 3), (8, 4), (6, 1), (10, 5)])
    def test_upper_band_products(self, rng, rows, w):
        dense, _band, x, problem = upper_band_problem(rng, rows, w)
        result = LinearContraflowArray(w).run(problem)
        assert np.allclose(result.y, dense @ x)

    def test_initial_values_are_added(self, rng):
        b = rng.uniform(-1, 1, 5)
        dense, _band, x, problem = upper_band_problem(rng, 5, 3, b=b)
        result = LinearContraflowArray(3).run(problem)
        assert np.allclose(result.y, dense @ x + b)

    def test_general_band_with_sub_and_super_diagonals(self, rng):
        rows = 7
        dense = np.zeros((rows, rows))
        for i in range(rows):
            for j in range(max(0, i - 1), min(rows, i + 2)):
                dense[i, j] = rng.uniform(-1.0, 1.0)
        band = BandMatrix.from_dense(dense, lower=1, upper=1)
        x = rng.uniform(-1, 1, rows)
        problem = LinearProblem(
            band=band,
            x=x,
            y_sources=[ExternalSource(0.0) for _ in range(rows)],
        )
        result = LinearContraflowArray(3).run(problem)
        assert np.allclose(result.y, dense @ x)

    def test_single_cell_array(self, rng):
        dense = np.diag(rng.uniform(1, 2, 4))
        band = BandMatrix.from_dense(dense, lower=0, upper=0)
        x = rng.uniform(-1, 1, 4)
        problem = LinearProblem(
            band=band, x=x, y_sources=[ExternalSource(0.0)] * 4
        )
        result = LinearContraflowArray(1).run(problem)
        assert np.allclose(result.y, dense @ x)


class TestTimingAndMetrics:
    def test_step_count_matches_kung_formula(self, rng):
        # For an upper band with N rows and bandwidth w the schedule spans
        # 2N + 2w - 3 steps (first input to last computation, inclusive).
        for rows, w in [(4, 2), (6, 3), (9, 3), (8, 4)]:
            _dense, _band, _x, problem = upper_band_problem(rng, rows, w)
            result = LinearContraflowArray(w).run(problem)
            assert result.total_cycles == 2 * rows + 2 * w - 3

    def test_mac_count_equals_band_positions(self, rng):
        _dense, band, _x, problem = upper_band_problem(rng, 6, 3)
        result = LinearContraflowArray(3).run(problem)
        assert result.report.mac_operations == band.band_positions()
        assert sum(result.cell_mac_counts) == band.band_positions()

    def test_utilization_definition(self, rng):
        _dense, band, _x, problem = upper_band_problem(rng, 6, 3)
        result = LinearContraflowArray(3).run(problem)
        expected = band.band_positions() / (3 * result.total_cycles)
        assert result.utilization == pytest.approx(expected)

    def test_output_stream_is_tagged_and_ordered(self, rng):
        rows, w = 5, 3
        _dense, band, x, _p = upper_band_problem(rng, rows, w)
        problem = LinearProblem(
            band=band,
            x=x,
            y_sources=[ExternalSource(0.0, tag=("b", i)) for i in range(rows)],
            output_tags=[("y", i) for i in range(rows)],
        )
        result = LinearContraflowArray(w).run(problem)
        tags = [item.tag for item in result.output_stream]
        assert tags == [("y", i) for i in range(rows)]
        # Outputs are produced every other cycle.
        cycles = result.output_stream.cycles()
        assert all(b - a == 2 for a, b in zip(cycles, cycles[1:]))

    def test_trace_recording_optional(self, rng):
        _dense, _band, _x, problem = upper_band_problem(rng, 4, 2)
        without = LinearContraflowArray(2).run(problem)
        assert without.trace is None
        with_trace = LinearContraflowArray(2, record_trace=True).run(problem)
        assert with_trace.trace is not None
        assert set(with_trace.trace.rows) == {"x in", "y out", "y/b in"}


class TestFeedback:
    def feedback_problem(self, rng, w=3):
        """Two chained block rows: the second starts from the first's output."""
        rows = 2 * w
        cols = rows + w - 1
        dense = np.zeros((rows, cols))
        for i in range(rows):
            dense[i, i : i + w] = rng.uniform(-1.0, 1.0, size=w)
        band = BandMatrix.from_dense(dense, lower=0, upper=w - 1)
        x = rng.uniform(-1.0, 1.0, size=cols)
        b = rng.uniform(-1.0, 1.0, size=w)
        sources = [ExternalSource(value=float(b[i]), tag=("b", i)) for i in range(w)]
        sources += [FeedbackSource(tag=("y", i, 0)) for i in range(w)]
        problem = LinearProblem(band=band, x=x, y_sources=sources)
        return dense, band, x, b, problem

    def test_feedback_accumulates_partial_results(self, rng):
        dense, _band, x, b, problem = self.feedback_problem(rng)
        result = LinearContraflowArray(3).run(problem)
        # Row i of the second block row accumulates its own products plus the
        # output of row i of the first block row (which started from b).
        expected_first = dense[:3] @ x + b
        expected_second = dense[3:] @ x + expected_first
        assert np.allclose(result.y[:3], expected_first)
        assert np.allclose(result.y[3:], expected_second)

    def test_feedback_delay_equals_array_size(self, rng):
        for w in (2, 3, 4, 5):
            _d, _b, _x, _bb, problem = self.feedback_problem(rng, w)
            result = LinearContraflowArray(w).run(problem)
            delays = result.feedback_delays()
            assert len(delays) == w
            assert set(delays) == {w}

    def test_feedback_register_occupancy_stays_within_w(self, rng):
        _d, _b, _x, _bb, problem = self.feedback_problem(rng, 4)
        result = LinearContraflowArray(4).run(problem)
        assert result.feedback_register_peak <= 4

    def test_feedback_without_preceding_output_fails(self, rng):
        # A problem whose very first row asks for feedback is infeasible.
        dense = np.zeros((2, 3))
        dense[0, :2] = 1.0
        dense[1, 1:] = 1.0
        band = BandMatrix.from_dense(dense, lower=0, upper=1)
        problem = LinearProblem(
            band=band,
            x=np.ones(3),
            y_sources=[FeedbackSource(), ExternalSource(0.0)],
        )
        with pytest.raises(FeedbackError):
            LinearContraflowArray(2).run(problem)


class TestOverlappedExecution:
    def test_two_problems_share_the_array(self, rng):
        dense1, _b1, x1, problem1 = upper_band_problem(rng, 6, 3)
        dense2, _b2, x2, problem2 = upper_band_problem(rng, 6, 3)
        result = LinearContraflowArray(3).run_overlapped([problem1, problem2])
        assert np.allclose(result.y_per_problem[0], dense1 @ x1)
        assert np.allclose(result.y_per_problem[1], dense2 @ x2)

    def test_overlapping_roughly_doubles_utilization(self, rng):
        _d1, _b1, _x1, problem1 = upper_band_problem(rng, 8, 3)
        _d2, _b2, _x2, problem2 = upper_band_problem(rng, 8, 3)
        single = LinearContraflowArray(3).run(problem1)
        double = LinearContraflowArray(3).run_overlapped([problem1, problem2])
        assert double.report.utilization > 1.8 * single.report.utilization

    def test_overlapped_takes_one_extra_cycle(self, rng):
        _d1, _b1, _x1, problem1 = upper_band_problem(rng, 8, 3)
        _d2, _b2, _x2, problem2 = upper_band_problem(rng, 8, 3)
        single = LinearContraflowArray(3).run(problem1)
        double = LinearContraflowArray(3).run_overlapped([problem1, problem2])
        assert double.total_cycles == single.total_cycles + 1

    def test_more_than_two_problems_rejected(self, rng):
        problems = [upper_band_problem(rng, 4, 2)[3] for _ in range(3)]
        with pytest.raises(ScheduleError):
            LinearContraflowArray(2).run_overlapped(problems)

    def test_single_problem_through_overlapped_api(self, rng):
        dense, _band, x, problem = upper_band_problem(rng, 4, 2)
        result = LinearContraflowArray(2).run_overlapped([problem])
        assert np.allclose(result.y, dense @ x)


class TestResultObject:
    def test_result_fields(self, rng):
        _dense, _band, _x, problem = upper_band_problem(rng, 4, 2)
        result = LinearContraflowArray(2).run(problem)
        assert isinstance(result, LinearRunResult)
        assert result.size == 2
        assert result.first_input_cycle == 0
        assert result.last_output_cycle > 0
        assert result.effective_utilization <= result.utilization + 1e-12
