"""Unit tests for ``repro.matrices.blocks``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrices.blocks import (
    BlockGrid,
    diagonal_part,
    merge_triangles,
    merge_udl,
    split_udl,
    strict_lower_triangle,
    strict_upper_triangle,
    triangular_split,
    upper_triangle,
)


@pytest.fixture
def block():
    return np.arange(1.0, 10.0).reshape(3, 3)


class TestTriangleHelpers:
    def test_upper_triangle_keeps_diagonal(self, block):
        upper = upper_triangle(block)
        assert upper[0, 0] == block[0, 0]
        assert upper[2, 0] == 0.0
        assert upper[0, 2] == block[0, 2]

    def test_strict_lower_excludes_diagonal(self, block):
        lower = strict_lower_triangle(block)
        assert lower[0, 0] == 0.0
        assert lower[2, 0] == block[2, 0]
        assert lower[0, 2] == 0.0

    def test_strict_upper_excludes_diagonal(self, block):
        upper = strict_upper_triangle(block)
        assert upper[0, 0] == 0.0
        assert upper[0, 1] == block[0, 1]

    def test_diagonal_part(self, block):
        diag = diagonal_part(block)
        assert np.array_equal(np.diag(diag), np.diag(block))
        assert diag[0, 1] == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ShapeError):
            upper_triangle(np.ones((2, 3)))


class TestTriangularSplit:
    def test_split_sums_back_to_block(self, block):
        upper, lower = triangular_split(block)
        assert np.array_equal(upper + lower, block)

    def test_main_diagonal_belongs_to_upper(self, block):
        upper, lower = triangular_split(block)
        assert np.array_equal(np.diag(upper), np.diag(block))
        assert np.all(np.diag(lower) == 0.0)

    def test_merge_validates_structure(self, block):
        upper, lower = triangular_split(block)
        assert np.array_equal(merge_triangles(upper, lower), block)
        with pytest.raises(ShapeError):
            merge_triangles(lower, upper)  # wrong order: not upper/strict-lower

    def test_merge_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            merge_triangles(np.triu(np.ones((3, 3))), np.tril(np.ones((2, 2)), -1))


class TestSplitUDL:
    def test_three_way_split_sums_back(self, block):
        u, d, l = split_udl(block)
        assert np.array_equal(u + d + l, block)
        assert np.array_equal(merge_udl(u, d, l), block)

    def test_parts_have_expected_structure(self, block):
        u, d, l = split_udl(block)
        assert np.all(np.diag(u) == 0.0)
        assert np.all(np.diag(l) == 0.0)
        assert np.array_equal(d, np.diag(np.diag(block)))

    def test_merge_rejects_malformed_parts(self, block):
        u, d, l = split_udl(block)
        with pytest.raises(ShapeError):
            merge_udl(d, d, l)
        with pytest.raises(ShapeError):
            merge_udl(u, block, l)
        with pytest.raises(ShapeError):
            merge_udl(u, d, block)


class TestBlockGrid:
    def test_geometry_with_padding(self):
        grid = BlockGrid(np.ones((7, 10)), 3)
        assert grid.block_rows == 3
        assert grid.block_cols == 4
        assert grid.padded_shape == (9, 12)
        assert grid.original_shape == (7, 10)

    def test_block_contents_and_padding_zeros(self):
        matrix = np.arange(1.0, 1.0 + 7 * 10).reshape(7, 10)
        grid = BlockGrid(matrix, 3)
        top_left = grid.block(0, 0)
        assert np.array_equal(top_left, matrix[:3, :3])
        bottom_right = grid.block(2, 3)
        assert bottom_right.shape == (3, 3)
        assert np.array_equal(bottom_right[:1, :1], matrix[6:7, 9:10])
        assert np.all(bottom_right[1:, :] == 0.0)
        assert np.all(bottom_right[:, 1:] == 0.0)

    def test_upper_lower_views_match_block(self):
        matrix = np.arange(36, dtype=float).reshape(6, 6)
        grid = BlockGrid(matrix, 3)
        for i in range(2):
            for j in range(2):
                block = grid.block(i, j)
                assert np.array_equal(grid.upper(i, j) + grid.lower(i, j), block)

    def test_block_index_out_of_range(self):
        grid = BlockGrid(np.ones((4, 4)), 2)
        with pytest.raises(ShapeError):
            grid.block(2, 0)
        with pytest.raises(ShapeError):
            grid.block(0, -1)

    def test_iter_blocks_row_major(self):
        grid = BlockGrid(np.ones((4, 4)), 2)
        order = [(idx.row, idx.col) for idx, _block in grid.iter_blocks()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_assemble_roundtrip(self):
        matrix = np.arange(36, dtype=float).reshape(6, 6)
        grid = BlockGrid(matrix, 3)
        assembled = BlockGrid.assemble(grid.to_block_array())
        assert np.array_equal(assembled, matrix)

    def test_assemble_validates_shape(self):
        with pytest.raises(ShapeError):
            BlockGrid.assemble(np.ones((2, 2, 3, 2)))

    def test_rejects_vectors(self):
        with pytest.raises(ShapeError):
            BlockGrid(np.ones(5), 2)

    def test_padded_returns_copy(self):
        grid = BlockGrid(np.ones((2, 2)), 2)
        padded = grid.padded
        padded[0, 0] = 42.0
        assert grid.padded[0, 0] == 1.0
