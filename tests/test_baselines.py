"""Unit tests for the comparison strategies in ``repro.baselines``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.block_partition import BlockPartitionedMatVec
from repro.baselines.naive_band import NaiveBlockMatMul, NaiveBlockMatVec
from repro.baselines.prt import PRTMatVec, PRTTransform
from repro.baselines.reference import reference_matmul, reference_matvec
from repro.core.dbt import DBTByRowsTransform
from repro.core.matvec import SizeIndependentMatVec
from repro.errors import ShapeError


class TestReference:
    def test_matvec_with_and_without_bias(self, rng):
        matrix = rng.uniform(size=(3, 4))
        x = rng.uniform(size=4)
        b = rng.uniform(size=3)
        assert np.allclose(reference_matvec(matrix, x), matrix @ x)
        assert np.allclose(reference_matvec(matrix, x, b), matrix @ x + b)

    def test_matmul_with_and_without_addend(self, rng):
        a = rng.uniform(size=(3, 4))
        b = rng.uniform(size=(4, 5))
        e = rng.uniform(size=(3, 5))
        assert np.allclose(reference_matmul(a, b), a @ b)
        assert np.allclose(reference_matmul(a, b, e), a @ b + e)


class TestNaiveBlockMatVec:
    def test_correctness(self, rng, small_matvec_problem):
        matrix, x, b = small_matvec_problem
        result = NaiveBlockMatVec(3).solve(matrix, x, b)
        assert np.allclose(result.result, matrix @ x + b)

    def test_needs_double_sized_array(self):
        assert NaiveBlockMatVec(3).array_size == 5
        assert NaiveBlockMatVec(5).array_size == 9

    def test_requires_external_additions(self, rng):
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        result = NaiveBlockMatVec(3).solve(matrix, x)
        assert result.external_additions == result.block_runs * 3
        assert result.block_runs == 6

    def test_utilization_well_below_dbt(self, rng):
        matrix = rng.uniform(size=(9, 9))
        x = rng.uniform(size=9)
        naive = NaiveBlockMatVec(3).solve(matrix, x)
        dbt = SizeIndependentMatVec(3).solve(matrix, x)
        assert naive.utilization < 0.6 * dbt.measured_utilization

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            NaiveBlockMatVec(3).solve(rng.uniform(size=(3, 4)), rng.uniform(size=3))
        with pytest.raises(ShapeError):
            NaiveBlockMatVec(3).solve(
                rng.uniform(size=(3, 4)), rng.uniform(size=4), rng.uniform(size=2)
            )


class TestNaiveBlockMatMul:
    def test_correctness(self, rng, small_matmul_problem):
        a, b, e = small_matmul_problem
        result = NaiveBlockMatMul(3).solve(a, b, e)
        assert np.allclose(result.result, a @ b + e)

    def test_array_and_accumulation_overheads(self, rng):
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 6))
        result = NaiveBlockMatMul(3).solve(a, b)
        assert result.processing_elements == 25  # (2w-1)^2
        assert result.block_runs == 8
        assert result.external_additions == 8 * 9

    def test_utilization_far_below_one_third(self, rng):
        a = rng.uniform(size=(6, 6))
        b = rng.uniform(size=(6, 6))
        result = NaiveBlockMatMul(3).solve(a, b)
        assert result.utilization < 0.15

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            NaiveBlockMatMul(2).solve(rng.uniform(size=(2, 3)), rng.uniform(size=(2, 3)))
        with pytest.raises(ShapeError):
            NaiveBlockMatMul(2).solve(
                rng.uniform(size=(2, 3)),
                rng.uniform(size=(3, 2)),
                rng.uniform(size=(3, 3)),
            )


class TestPRT:
    def test_prt_solves_single_block(self, rng):
        matrix = rng.uniform(size=(3, 3))
        x = rng.uniform(size=3)
        b = rng.uniform(size=3)
        solution = PRTMatVec(3).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)
        assert solution.measured_steps == 2 * 3 * 1 + 2 * 3 - 3

    def test_prt_uses_half_the_cells_of_the_naive_strategy(self):
        assert PRTMatVec(4).array_size == 4
        assert NaiveBlockMatVec(4).array_size == 7

    def test_prt_transform_equals_dbt_special_case(self, rng):
        """T4: PRT is DBT-by-rows with n_bar = m_bar = 1."""
        matrix = rng.uniform(size=(4, 4))
        prt = PRTTransform(matrix, 4)
        dbt = DBTByRowsTransform(matrix, 4)
        assert np.allclose(prt.band.to_dense(), dbt.band.to_dense())
        assert prt.assignments == tuple(dbt.assignments)

    def test_prt_rejects_multi_block_problems(self, rng):
        with pytest.raises(ShapeError):
            PRTTransform(rng.uniform(size=(5, 3)), 3)
        with pytest.raises(ShapeError):
            PRTMatVec(3).solve(rng.uniform(size=(3, 5)), rng.uniform(size=5))

    def test_prt_pads_smaller_blocks(self, rng):
        matrix = rng.uniform(size=(2, 3))
        x = rng.uniform(size=3)
        solution = PRTMatVec(3).solve(matrix, x)
        assert np.allclose(solution.y, matrix @ x)


class TestBlockPartitioned:
    def test_correctness(self, rng, small_matvec_problem):
        matrix, x, b = small_matvec_problem
        result = BlockPartitionedMatVec(3).solve(matrix, x, b)
        assert np.allclose(result.result, matrix @ x + b)

    def test_uses_small_array_but_host_additions(self, rng):
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        result = BlockPartitionedMatVec(3).solve(matrix, x)
        assert result.processing_elements == 3
        assert result.external_additions > 0
        assert result.block_runs == 6

    def test_dbt_beats_block_partitioning(self, rng):
        """Chaining plus feedback is what lifts utilization to the paper's 1/2."""
        matrix = rng.uniform(size=(12, 12))
        x = rng.uniform(size=12)
        partitioned = BlockPartitionedMatVec(3).solve(matrix, x)
        dbt = SizeIndependentMatVec(3).solve(matrix, x)
        assert dbt.measured_utilization > 1.2 * partitioned.utilization
        assert partitioned.external_additions > 0
        assert dbt.feedback_delays  # DBT keeps the accumulation inside the array

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            BlockPartitionedMatVec(2).solve(rng.uniform(size=(2, 3)), rng.uniform(size=2))
        with pytest.raises(ShapeError):
            BlockPartitionedMatVec(2).solve(
                rng.uniform(size=(2, 3)), rng.uniform(size=3), rng.uniform(size=3)
            )
