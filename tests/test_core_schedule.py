"""Unit tests for overlap partition planning."""

from __future__ import annotations

import pytest

from repro.core.schedule import OverlapPartition, plan_overlap_partition
from repro.errors import ScheduleError


class TestPlanOverlapPartition:
    def test_paper_case_splits_in_the_middle(self):
        # n=6, m=9, w=3 -> two original block rows, one per half; the cut
        # falls after band block row 2 (the dotted line of Fig. 2.b).
        partition = plan_overlap_partition(6, 9, 3)
        assert partition.first_block_rows == 1
        assert partition.second_block_rows == 1
        assert partition.cut_band_block_row == 3
        assert partition.first_rows == 3
        assert partition.second_rows == 3
        assert partition.is_balanced()

    def test_odd_block_rows_give_larger_first_half(self):
        partition = plan_overlap_partition(9, 4, 3)
        assert partition.first_block_rows == 2
        assert partition.second_block_rows == 1
        assert partition.first_rows == 6
        assert partition.second_rows == 3
        assert partition.is_balanced()

    def test_non_aligned_rows(self):
        partition = plan_overlap_partition(7, 5, 3)
        assert partition.n_bar == 3
        assert partition.first_rows + partition.second_rows == 7

    def test_single_block_row_cannot_be_partitioned(self):
        with pytest.raises(ScheduleError):
            plan_overlap_partition(3, 9, 3)

    def test_m_bar_property(self):
        partition = plan_overlap_partition(6, 10, 3)
        assert partition.m_bar == 4

    def test_dataclass_fields(self):
        partition = OverlapPartition(w=3, n=6, m=9, first_block_rows=1, second_block_rows=1)
        assert partition.n_bar == 2
        assert partition.cut_band_block_row == 3
