"""Property-based verification harness for the iterative subsystem.

Seeded grids over (shape, w, omega, seed) assert the three properties the
subsystem promises:

(a) for SPD diagonally dominant systems, the Jacobi and CG residual
    histories are monotone non-increasing;
(b) every converged solution matches ``numpy.linalg.solve`` within the
    criteria tolerance (and power iteration matches ``numpy.linalg.eigh``);
(c) the ``simulate`` and ``vectorized`` backends are bit-identical *per
    sweep*: same residual history float for float, same solution bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iterative import (
    ConjugateGradientSolver,
    ConvergenceCriteria,
    IterativeRefinementSolver,
    JacobiSolver,
    PowerIterationSolver,
    SORSolver,
)

#: (n, w, seed) grid shared by the value/property sweeps.
GRID = [
    (5, 3, 11),
    (8, 3, 23),
    (9, 4, 37),
    (12, 4, 51),
]

#: Smaller grid for the cycle-accurate simulator comparisons (slow backend).
BACKEND_GRID = [(5, 3, 7), (6, 3, 19)]

OMEGAS = [0.8, 1.0, 1.3]


def make_system(n: int, seed: int):
    """A seeded SPD, strictly diagonally dominant system ``A x = b``."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n))
    matrix = (a + a.T) / 2.0
    matrix += (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(n)
    return matrix, rng.normal(size=n)


def assert_monotone(history, slack: float = 1e-12) -> None:
    for earlier, later in zip(history, history[1:]):
        assert later <= earlier * (1.0 + slack), (
            f"residual rose from {earlier:.3e} to {later:.3e} in {history}"
        )


# --------------------------------------------------------------------------- #
# (a) monotone residual histories on SPD systems
# --------------------------------------------------------------------------- #
class TestMonotoneResiduals:
    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_jacobi_history_is_monotone_non_increasing(self, n, w, seed):
        matrix, b = make_system(n, seed)
        result = JacobiSolver(w).solve(matrix, b)
        assert result.converged
        assert len(result.residual_history) == result.iterations
        assert_monotone(result.residual_history)

    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_cg_history_is_monotone_non_increasing(self, n, w, seed):
        matrix, b = make_system(n, seed)
        result = ConjugateGradientSolver(w).solve(matrix, b)
        assert result.converged
        assert_monotone(result.residual_history)


# --------------------------------------------------------------------------- #
# (b) converged solutions match the direct solver
# --------------------------------------------------------------------------- #
class TestMatchesDirectSolve:
    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_jacobi_matches_numpy(self, n, w, seed):
        matrix, b = make_system(n, seed)
        result = JacobiSolver(w).solve(matrix, b)
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    @pytest.mark.parametrize("n,w,seed", GRID)
    @pytest.mark.parametrize("omega", OMEGAS)
    def test_sor_matches_numpy_across_omegas(self, n, w, seed, omega):
        matrix, b = make_system(n, seed)
        result = SORSolver(w, omega=omega).solve(matrix, b)
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_cg_matches_numpy(self, n, w, seed):
        matrix, b = make_system(n, seed)
        result = ConjugateGradientSolver(w).solve(matrix, b)
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-8)

    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_refinement_matches_numpy(self, n, w, seed):
        matrix, b = make_system(n, seed)
        result = IterativeRefinementSolver(w).solve(matrix, b)
        assert result.converged
        assert np.allclose(result.x, np.linalg.solve(matrix, b), atol=1e-9)

    @pytest.mark.parametrize("n,w,seed", GRID)
    def test_power_matches_numpy_dominant_eigenpair(self, n, w, seed):
        matrix, _ = make_system(n, seed)
        criteria = ConvergenceCriteria(atol=1e-9, rtol=1e-9, max_iter=5000)
        result = PowerIterationSolver(w, criteria=criteria).solve(matrix)
        assert result.converged
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        dominant_index = int(np.argmax(np.abs(eigenvalues)))
        assert result.eigenvalue == pytest.approx(
            eigenvalues[dominant_index], rel=1e-6
        )
        overlap = abs(float(result.x @ eigenvectors[:, dominant_index]))
        assert overlap == pytest.approx(1.0, abs=1e-5)


# --------------------------------------------------------------------------- #
# (c) simulate and vectorized backends are bit-identical per sweep
# --------------------------------------------------------------------------- #
class TestBackendBitIdentity:
    #: Bound the sweep count so the cycle-accurate simulator stays fast.
    CRITERIA = ConvergenceCriteria(atol=1e-280, max_iter=4)

    def both_backends(self, solver_factory, *operands):
        results = {
            backend: solver_factory(backend).solve(*operands)
            for backend in ("simulate", "vectorized")
        }
        simulate, vectorized = results["simulate"], results["vectorized"]
        assert simulate.iterations == vectorized.iterations
        # Per-sweep equality: the histories must agree float for float.
        assert simulate.residual_history == vectorized.residual_history
        assert np.array_equal(simulate.x, vectorized.x)
        return simulate, vectorized

    @pytest.mark.parametrize("n,w,seed", BACKEND_GRID)
    def test_jacobi_backends_agree(self, n, w, seed):
        matrix, b = make_system(n, seed)
        self.both_backends(
            lambda backend: JacobiSolver(w, criteria=self.CRITERIA, backend=backend),
            matrix,
            b,
        )

    @pytest.mark.parametrize("n,w,seed", BACKEND_GRID)
    @pytest.mark.parametrize("omega", [1.0, 1.3])
    def test_sor_backends_agree(self, n, w, seed, omega):
        matrix, b = make_system(n, seed)
        self.both_backends(
            lambda backend: SORSolver(
                w, omega=omega, criteria=self.CRITERIA, backend=backend
            ),
            matrix,
            b,
        )

    @pytest.mark.parametrize("n,w,seed", BACKEND_GRID)
    def test_cg_backends_agree(self, n, w, seed):
        matrix, b = make_system(n, seed)
        self.both_backends(
            lambda backend: ConjugateGradientSolver(
                w, criteria=self.CRITERIA, backend=backend
            ),
            matrix,
            b,
        )

    @pytest.mark.parametrize("n,w,seed", BACKEND_GRID)
    def test_refinement_backends_agree(self, n, w, seed):
        matrix, b = make_system(n, seed)
        self.both_backends(
            lambda backend: IterativeRefinementSolver(
                w, criteria=self.CRITERIA, backend=backend
            ),
            matrix,
            b,
        )

    @pytest.mark.parametrize("n,w,seed", BACKEND_GRID)
    def test_power_backends_agree(self, n, w, seed):
        matrix, _ = make_system(n, seed)
        simulate, vectorized = self.both_backends(
            lambda backend: PowerIterationSolver(
                w, criteria=self.CRITERIA, backend=backend
            ),
            matrix,
        )
        assert simulate.eigenvalue == vectorized.eigenvalue
