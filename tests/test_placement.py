"""The plan-placement layer: stable routing, overrides, telemetry.

Acceptance: routing keys hash identically in every interpreter
(regression for the ``hash(plan_key) % n_shards`` bug — built-in ``hash``
salts strings per process via ``PYTHONHASHSEED``, so the old routing
scattered a warm shard layout across restarts), the
:class:`~repro.service.placement.PlacementTable` honours per-key
overrides over the default policy, and its snapshots expose the observed
key→shard layout.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.iterative import ConvergenceCriteria
from repro.service import (
    PlacementTable,
    SolverService,
    stable_placement_hash,
)

W = 4
N = 8

#: Computes the stable hashes and shard placements of string-bearing
#: routing keys; the parent runs it under different PYTHONHASHSEED values
#: and asserts identical output (built-in hash() would differ).
_ROUTING_SCRIPT = textwrap.dedent(
    """
    import numpy as np
    from repro.api import ArraySpec, ExecutionOptions, Solver
    from repro.iterative import ConvergenceCriteria
    from repro.service import PlacementTable, stable_placement_hash

    solver = Solver(ArraySpec(4))
    a, x = np.ones((8, 8)), np.ones(8)
    plain = solver.plan_key("matvec", a, x)
    capped = ExecutionOptions(
        criteria=ConvergenceCriteria(atol=1e-9, max_iter=7)
    )
    iterative = solver.plan_key("jacobi", a, x, options=capped)
    graph_key = ("__graph__", (plain, iterative), 4, capped)
    table = PlacementTable(5)
    for key in (plain, iterative, graph_key):
        print(stable_placement_hash(key), table.shard_of(key))
    """
)


def _routing_output(hashseed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _ROUTING_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    ).stdout


class TestStableHash:
    def test_plan_keys_hash_identically_across_interpreters(self):
        """The regression the placement layer exists for: string-bearing
        plan keys (kind names, option dataclasses) must route to the same
        shard in every process, whatever PYTHONHASHSEED says."""
        salted_one = _routing_output("0")
        salted_two = _routing_output("12345")
        assert salted_one == salted_two
        # And both match this interpreter's own view of the same keys.
        solver = Solver(ArraySpec(W))
        a, x = np.ones((N, N)), np.ones(N)
        plain = solver.plan_key("matvec", a, x)
        first_hash, first_shard = salted_one.splitlines()[0].split()
        assert int(first_hash) == stable_placement_hash(plain)
        assert int(first_shard) == PlacementTable(5).shard_of(plain)

    def test_distinct_values_encode_distinctly(self):
        pairs = [
            ("1", 1),
            (1, 1.0),
            (True, 1),
            (None, 0),
            (("a", "b"), ("ab",)),
            ((1, (2, 3)), ((1, 2), 3)),
            (ExecutionOptions(), ExecutionOptions(overlapped=True)),
            (
                ExecutionOptions(
                    criteria=ConvergenceCriteria(atol=1e-9, max_iter=7)
                ),
                ExecutionOptions(
                    criteria=ConvergenceCriteria(atol=1e-9, max_iter=8)
                ),
            ),
        ]
        for left, right in pairs:
            assert stable_placement_hash(left) != stable_placement_hash(
                right
            ), (left, right)

    def test_equal_values_hash_equal(self):
        key = ("matvec", ((N, N), (N,)), W, ExecutionOptions())
        same = ("matvec", ((N, N), (N,)), W, ExecutionOptions())
        assert stable_placement_hash(key) == stable_placement_hash(same)
        # Lists and tuples canonicalize identically (shapes sometimes
        # arrive as lists from user code).
        assert stable_placement_hash([1, 2]) == stable_placement_hash((1, 2))

    def test_unencodable_key_raises_with_context(self):
        with pytest.raises(TypeError, match="stable placement"):
            stable_placement_hash(("matvec", object()))


class TestPlacementTable:
    def test_default_policy_is_stable_hash_modulo(self):
        table = PlacementTable(3)
        key = ("matvec", ((N, N), (N,)), W, ExecutionOptions())
        assert table.shard_of(key) == stable_placement_hash(key) % 3
        assert table.shard_of(key) == table.shard_of(key)

    def test_override_wins_and_release_restores(self):
        table = PlacementTable(4)
        key = ("jacobi", ((N, N), (N,)), W, ExecutionOptions())
        default = table.shard_of(key)
        pinned = (default + 1) % 4
        table.assign(key, pinned)
        assert table.shard_of(key) == pinned
        assert table.overrides() == {key: pinned}
        assert table.release(key)
        assert table.shard_of(key) == default
        assert not table.release(key)  # already gone

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="n_shards"):
            PlacementTable(0)
        with pytest.raises(ValueError, match="track_limit"):
            PlacementTable(2, track_limit=-1)
        table = PlacementTable(2)
        with pytest.raises(ValueError, match="shard must be in"):
            table.assign("key", 2)
        with pytest.raises(ValueError, match="shard must be in"):
            table.assign("key", -1)

    def test_snapshot_reports_lookups_overrides_and_load(self):
        table = PlacementTable(2)
        table.assign("hot", 1)
        for key in ("hot", "hot", "cold"):
            table.shard_of(key)
        snap = table.snapshot()
        assert snap.n_shards == 2
        assert snap.lookups == 3
        assert snap.override_hits == 2
        assert snap.overrides == {"hot": 1}
        assert snap.assignments["hot"] == 1
        assert sum(snap.shard_load.values()) == 2  # hot + cold tracked
        described = table.describe()
        assert "3 lookup(s)" in described
        assert "1 override(s) (2 hit(s))" in described

    def test_tracking_is_bounded_to_newest_keys(self):
        table = PlacementTable(2, track_limit=3)
        for index in range(10):
            table.shard_of(("key", index))
        snap = table.snapshot()
        assert len(snap.assignments) == 3
        assert set(snap.assignments) == {("key", i) for i in (7, 8, 9)}
        # A zero limit disables tracking entirely.
        untracked = PlacementTable(2, track_limit=0)
        untracked.shard_of("whatever")
        assert untracked.snapshot().assignments == {}


class TestServiceRouting:
    def test_shard_index_uses_the_placement_table(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        with SolverService(ArraySpec(W), n_shards=3) as service:
            key = service.plan_key("matvec", a, x)
            assert service.shard_index(key) == (
                stable_placement_hash(key) % 3
            )
            # Rebalancing through the service's table moves the key for
            # subsequent lookups.
            target = (service.shard_index(key) + 1) % 3
            service.placement.assign(key, target)
            assert service.shard_index(key) == target

    def test_stats_carry_the_placement_snapshot(self, rng):
        a, x = rng.normal(size=(N, N)), rng.normal(size=N)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            service.solve("matvec", a, x)
            stats = service.stats()
        assert stats.placement is not None
        assert stats.placement.n_shards == 2
        assert stats.placement.lookups >= 1
        assert "placement:" in stats.describe()
