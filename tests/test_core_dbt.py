"""Unit tests for the DBT-by-rows transformation (Section 2 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dbt import DBTByRowsTransform, dbt_by_rows
from repro.errors import TransformError
from repro.matrices.padding import pad_matrix, pad_vector
from repro.systolic.feedback import ExternalSource, FeedbackSource


@pytest.fixture
def paper_case(rng):
    """The paper's running example: n=6, m=9, w=3 (n_bar=2, m_bar=3)."""
    matrix = rng.uniform(-1.0, 1.0, size=(6, 9))
    return DBTByRowsTransform(matrix, 3), matrix


class TestGeometry:
    def test_block_counts(self, paper_case):
        transform, _matrix = paper_case
        assert transform.n_bar == 2
        assert transform.m_bar == 3
        assert transform.block_row_count == 6

    def test_band_dimensions(self, paper_case):
        transform, _matrix = paper_case
        assert transform.band_rows == 18
        assert transform.band_cols == 20
        band = transform.band
        assert band.lower == 0
        assert band.upper == 2

    def test_non_aligned_dimensions_are_padded(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(5, 7)), 3)
        assert transform.n_bar == 2
        assert transform.m_bar == 3
        assert transform.original_shape == (5, 7)

    def test_convenience_constructor(self, rng):
        matrix = rng.uniform(size=(4, 4))
        assert dbt_by_rows(matrix, 2).band_rows == 8


class TestAssignments:
    def test_by_rows_rule(self, paper_case):
        transform, _matrix = paper_case
        expected_upper = [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]
        expected_lower = [(0, 1), (0, 2), (0, 0), (1, 1), (1, 2), (1, 0)]
        assert [a.upper_source for a in transform.assignments] == expected_upper
        assert [a.lower_source for a in transform.assignments] == expected_lower

    def test_prt_is_the_single_block_case(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(3, 3)), 3)
        assert transform.block_row_count == 1
        assert transform.assignments[0].upper_source == (0, 0)
        assert transform.assignments[0].lower_source == (0, 0)

    def test_conditions_hold_for_many_shapes(self, rng):
        for n, m, w in [(6, 9, 3), (5, 7, 3), (4, 4, 2), (9, 3, 3), (2, 10, 2)]:
            DBTByRowsTransform(rng.uniform(size=(n, m)), w).verify_conditions()


class TestBandContents:
    def test_band_is_completely_filled(self, paper_case):
        transform, _matrix = paper_case
        filled, total = transform.band_fill_report()
        assert filled == total
        assert transform.is_band_full()

    def test_every_band_entry_comes_from_the_padded_matrix(self, paper_case):
        transform, matrix = paper_case
        padded = pad_matrix(matrix, 3)
        band = transform.band
        for (i, j), (oi, oj) in transform.provenance().items():
            assert band.get(i, j) == padded[oi, oj]

    def test_each_original_element_appears_exactly_once(self, paper_case):
        transform, matrix = paper_case
        padded = pad_matrix(matrix, 3)
        origins = list(transform.provenance().values())
        assert len(origins) == len(set(origins))
        assert len(origins) == padded.size

    def test_diagonal_blocks_hold_upper_triangles(self, paper_case):
        transform, matrix = paper_case
        padded = pad_matrix(matrix, 3)
        band = transform.band
        # Band block row 1 holds U_{0,1} on its diagonal block.
        block = np.array([[band.get(3 + a, 3 + b) for b in range(3)] for a in range(3)])
        assert np.allclose(block, np.triu(padded[0:3, 3:6]))

    def test_superdiagonal_blocks_hold_strict_lower_triangles(self, paper_case):
        transform, matrix = paper_case
        padded = pad_matrix(matrix, 3)
        band = transform.band
        # Band block row 0 holds L_{0,1} on its super-diagonal block.
        block = np.zeros((3, 3))
        for a in range(1, 3):
            for b in range(a):
                block[a, b] = band.get(a, 3 + b)
        assert np.allclose(block, np.tril(padded[0:3, 3:6], k=-1))


class TestTransformedVectors:
    def test_x_layout_matches_paper(self, rng):
        # For n=6, m=9, w=3 the transformed x is (x_0, x_1, x_2) twice plus
        # the first two elements of x_0 — 20 elements in total (Fig. 3).
        matrix = rng.uniform(size=(6, 9))
        x = np.arange(1.0, 10.0)
        transform = DBTByRowsTransform(matrix, 3)
        x_tilde = transform.transform_x(x)
        assert x_tilde.shape == (20,)
        assert np.array_equal(x_tilde[:9], x)
        assert np.array_equal(x_tilde[9:18], x)
        assert np.array_equal(x_tilde[18:], x[:2])

    def test_x_tags_name_original_elements(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        tags = transform.x_tags()
        assert len(tags) == 20
        assert tags[0] == ("x", 0)
        assert tags[9] == ("x", 0)
        assert tags[-1] == ("x", 1)

    def test_x_length_validation(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        with pytest.raises(TransformError):
            transform.transform_x(np.ones(8))

    def test_padded_x_for_non_aligned_m(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(3, 4)), 3)
        x = np.arange(1.0, 5.0)
        x_tilde = transform.transform_x(x)
        padded = pad_vector(x, 3)
        assert x_tilde.shape[0] == transform.band_cols
        assert np.array_equal(x_tilde[:6], padded)

    def test_y_sources_alternate_external_and_feedback(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        b = np.arange(1.0, 7.0)
        sources = transform.build_y_sources(b)
        assert len(sources) == 18
        # Block row 0 takes b_0 externally.
        assert all(isinstance(s, ExternalSource) for s in sources[:3])
        assert [s.value for s in sources[:3]] == [1.0, 2.0, 3.0]
        # Block rows 1 and 2 take feedback.
        assert all(isinstance(s, FeedbackSource) for s in sources[3:9])
        # Block row 3 starts the second original block row with b_1.
        assert all(isinstance(s, ExternalSource) for s in sources[9:12])
        assert [s.value for s in sources[9:12]] == [4.0, 5.0, 6.0]

    def test_missing_b_defaults_to_zero(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(3, 6)), 3)
        sources = transform.build_y_sources(None)
        assert all(
            s.value == 0.0 for s in sources if isinstance(s, ExternalSource)
        )

    def test_b_length_validation(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        with pytest.raises(TransformError):
            transform.build_y_sources(np.ones(5))

    def test_output_tags_mark_final_passes(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        tags = transform.output_tags()
        assert len(tags) == 18
        assert tags[0] == ("y", 0, 0)        # partial, pass 0
        assert tags[6] == ("y", 0)           # final (last pass of block row 0)
        assert tags[-1] == ("y", 5)          # final element of the last block row

    def test_final_band_rows(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        assert transform.final_band_rows() == [6, 7, 8, 15, 16, 17]


class TestRecovery:
    def test_recover_y_extracts_final_blocks(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        band_outputs = np.arange(18, dtype=float)
        y = transform.recover_y(band_outputs)
        assert np.array_equal(y, [6.0, 7.0, 8.0, 15.0, 16.0, 17.0])

    def test_recover_validates_length(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(6, 9)), 3)
        with pytest.raises(TransformError):
            transform.recover_y(np.ones(17))

    def test_recover_crops_padded_rows(self, rng):
        transform = DBTByRowsTransform(rng.uniform(size=(5, 9)), 3)
        y = transform.recover_y(np.arange(transform.band_rows, dtype=float))
        assert y.shape == (5,)


class TestFunctionalEquivalence:
    def test_band_times_transformed_x_reproduces_products(self, rng):
        """Each band block row's product equals one U/L partial contribution.

        The full functional check (band product + feedback chain == A x + b)
        is exercised end-to-end by the pipeline tests; here the structure is
        validated at the band level: summing the band rows belonging to one
        original block row reproduces that block row's product.
        """
        matrix = rng.uniform(size=(6, 9))
        x = rng.uniform(size=9)
        transform = DBTByRowsTransform(matrix, 3)
        band = transform.band
        x_tilde = transform.transform_x(x)
        partials = band.matvec(x_tilde)
        padded = pad_matrix(matrix, 3)
        for block_row in range(transform.n_bar):
            rows = slice(block_row * 3, block_row * 3 + 3)
            summed = np.zeros(3)
            for k in range(block_row * 3, (block_row + 1) * 3):
                summed += partials[k * 3 : (k + 1) * 3]
            assert np.allclose(summed, padded[rows] @ np.concatenate([x, np.zeros(0)]))

    def test_w_of_one_reduces_to_elementwise_walk(self, rng):
        matrix = rng.uniform(size=(2, 3))
        x = rng.uniform(size=3)
        transform = DBTByRowsTransform(matrix, 1)
        assert transform.band_rows == 6
        assert transform.band_cols == 6
        partials = transform.band.matvec(transform.transform_x(x))
        # Summing each original row's three partials gives the dense product.
        y0 = partials[0] + partials[1] + partials[2]
        y1 = partials[3] + partials[4] + partials[5]
        assert np.allclose([y0, y1], matrix @ x)
