"""Unit tests for the matrix-matrix operand band construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.operands import MatMulOperands
from repro.errors import TransformError
from repro.matrices.padding import pad_matrix


@pytest.fixture
def fig4_case(rng):
    """The paper's Fig. 4 case: n_bar=2, p_bar=2, m_bar=3, w=3."""
    a = rng.uniform(-1.0, 1.0, size=(6, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 9))
    return MatMulOperands(a, b, 3), a, b


class TestGeometry:
    def test_block_counts_and_dimension(self, fig4_case):
        operands, _a, _b = fig4_case
        assert (operands.n_bar, operands.p_bar, operands.m_bar) == (2, 2, 3)
        assert operands.full_block_count == 12
        assert operands.copy_block_count == 4
        # dimension = m_bar n_bar p_bar w + w - 1
        assert operands.dimension == 12 * 3 + 2 == 38

    def test_band_shapes_and_orientations(self, fig4_case):
        operands, _a, _b = fig4_case
        a_band = operands.a_operand.band
        b_band = operands.b_operand.band
        assert a_band.shape == (38, 38)
        assert b_band.shape == (38, 38)
        assert (a_band.lower, a_band.upper) == (0, 2)
        assert (b_band.lower, b_band.upper) == (2, 0)

    def test_non_aligned_shapes_are_padded(self, rng):
        operands = MatMulOperands(rng.uniform(size=(4, 5)), rng.uniform(size=(5, 7)), 3)
        assert (operands.n_bar, operands.p_bar, operands.m_bar) == (2, 2, 3)

    def test_incompatible_shapes_rejected(self, rng):
        with pytest.raises(TransformError):
            MatMulOperands(rng.uniform(size=(4, 5)), rng.uniform(size=(6, 7)), 3)


class TestBandContents:
    def test_bands_are_completely_filled(self, fig4_case):
        operands, _a, _b = fig4_case
        assert operands.a_operand.is_band_full()
        assert operands.b_operand.is_band_full()

    def test_a_band_first_blocks_match_dbt_by_rows(self, fig4_case):
        operands, a, _b = fig4_case
        padded = pad_matrix(a, 3)
        band = operands.a_operand.band
        # Band block 0: U of A block (0,0) on the diagonal.
        diag = np.array([[band.get(i, j) for j in range(3)] for i in range(3)])
        assert np.allclose(diag, np.triu(padded[:3, :3]))
        # Band block 0: L of A block (0,1) on the super-diagonal block.
        super_block = np.array(
            [[band.get(i, 3 + j) for j in range(3)] for i in range(3)]
        )
        assert np.allclose(super_block, np.tril(padded[:3, 3:6], k=-1))

    def test_a_band_copies_repeat_every_copy_block_count(self, fig4_case):
        operands, _a, _b = fig4_case
        band = operands.a_operand.band
        w, copy = 3, operands.copy_block_count
        for block in range(operands.full_block_count - copy):
            base, shifted = block * w, (block + copy) * w
            original = np.array(
                [[band.get(base + i, base + j) for j in range(w)] for i in range(w)]
            )
            repeat = np.array(
                [[band.get(shifted + i, shifted + j) for j in range(w)] for i in range(w)]
            )
            assert np.allclose(original, repeat)

    def test_b_band_diagonal_blocks_are_lower_triangles(self, fig4_case):
        operands, _a, b = fig4_case
        padded = pad_matrix(b, 3)
        band = operands.b_operand.band
        diag = np.array([[band.get(i, j) for j in range(3)] for i in range(3)])
        assert np.allclose(diag, np.tril(padded[:3, :3]))

    def test_tail_blocks_hold_leading_corners(self, fig4_case):
        operands, a, b = fig4_case
        a_padded, b_padded = pad_matrix(a, 3), pad_matrix(b, 3)
        tail = operands.full_block_count * 3
        a_band, b_band = operands.a_operand.band, operands.b_operand.band
        for i in range(2):
            for j in range(i, 2):
                assert a_band.get(tail + i, tail + j) == pytest.approx(
                    np.triu(a_padded[:3, :3])[i, j]
                )
        for i in range(2):
            for j in range(i + 1):
                assert b_band.get(tail + i, tail + j) == pytest.approx(
                    np.tril(b_padded[:3, :3])[i, j]
                )

    def test_provenance_values_match_padded_operands(self, fig4_case):
        operands, a, b = fig4_case
        a_padded, b_padded = pad_matrix(a, 3), pad_matrix(b, 3)
        a_band = operands.a_operand.band
        for (i, j), (oi, oj) in operands.a_operand.provenance.items():
            assert a_band.get(i, j) == a_padded[oi, oj]
        b_band = operands.b_operand.band
        for (i, j), (oi, oj) in operands.b_operand.provenance.items():
            assert b_band.get(i, j) == b_padded[oi, oj]


class TestStructuralAudits:
    def test_inner_origins_consistent(self, fig4_case):
        operands, _a, _b = fig4_case
        assert operands.inner_origins_consistent()

    def test_row_and_column_origins_cover_all_indices(self, fig4_case):
        operands, _a, _b = fig4_case
        assert np.all(operands.a_operand.row_origin >= 0)
        assert np.all(operands.b_operand.col_origin >= 0)
        # Every original row/column index appears.
        assert set(operands.a_operand.row_origin) == set(range(6))
        assert set(operands.b_operand.col_origin) == set(range(9))

    @pytest.mark.parametrize(
        "n,p,m,w", [(3, 3, 3, 3), (6, 6, 9, 3), (4, 5, 7, 3), (4, 4, 4, 2), (2, 3, 4, 2)]
    )
    def test_product_coverage(self, rng, n, p, m, w):
        operands = MatMulOperands(
            rng.uniform(size=(n, p)), rng.uniform(size=(p, m)), w
        )
        covered, duplicated = operands.verify_product_coverage()
        n_bar = -(-n // w)
        p_bar = -(-p // w)
        m_bar = -(-m // w)
        assert covered == n_bar * p_bar * m_bar * w ** 3
        # Duplicates only come from the (w-1)x(w-1) tail corner product.
        assert duplicated <= (w - 1) ** 3

    def test_band_product_equals_padded_products(self, rng):
        """The numerical check behind the coverage audit: the band product
        contains exactly the padded dense product contributions."""
        a = rng.uniform(size=(4, 4))
        b = rng.uniform(size=(4, 4))
        operands = MatMulOperands(a, b, 2)
        a_band = operands.a_operand.band.to_dense()
        b_band = operands.b_operand.band.to_dense()
        product = a_band @ b_band
        row_origin = operands.a_operand.row_origin
        col_origin = operands.b_operand.col_origin
        tail = operands.full_block_count * 2
        collected = np.zeros((4, 4))
        for i in range(operands.dimension):
            for j in range(operands.dimension):
                if i >= tail and j >= tail:
                    continue
                collected[row_origin[i], col_origin[j]] += product[i, j]
        assert np.allclose(collected, pad_matrix(a, 2) @ pad_matrix(b, 2))
