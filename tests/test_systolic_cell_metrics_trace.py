"""Unit tests for the cells, metrics and trace helpers of ``repro.systolic``."""

from __future__ import annotations

import pytest

from repro.systolic.cell import InnerProductStepCell
from repro.systolic.metrics import UtilizationReport, utilization
from repro.systolic.stream import DataStream, ScheduledValue
from repro.systolic.trace import (
    DataFlowTrace,
    default_tag_formatter,
    render_dataflow_table,
)


class TestInnerProductStepCell:
    def test_mac_with_all_operands(self):
        cell = InnerProductStepCell(0)
        cell.load(y_value=1.0, y_tag=None, x_value=2.0, x_tag=None)
        assert cell.step(3.0) == pytest.approx(7.0)
        assert cell.mac_count == 1
        assert cell.busy_cycles == 1

    def test_missing_coefficient_passes_y_through(self):
        cell = InnerProductStepCell(0)
        cell.load(y_value=4.0, y_tag=None, x_value=2.0, x_tag=None)
        assert cell.step(None) == 4.0
        assert cell.mac_count == 0

    def test_missing_x_passes_y_through(self):
        cell = InnerProductStepCell(0)
        cell.load(y_value=4.0, y_tag=None, x_value=None, x_tag=None)
        assert cell.step(5.0) == 4.0
        assert cell.mac_count == 0

    def test_bubble_y_stays_bubble(self):
        cell = InnerProductStepCell(0)
        cell.load(y_value=None, y_tag=None, x_value=2.0, x_tag=None)
        assert cell.step(5.0) is None

    def test_utilization_counter(self):
        cell = InnerProductStepCell(1)
        cell.load(1.0, None, 1.0, None)
        cell.step(1.0)
        cell.load(None, None, None, None)
        cell.step(None)
        assert cell.total_cycles == 2
        assert cell.utilization == pytest.approx(0.5)

    def test_fresh_cell_utilization_zero(self):
        assert InnerProductStepCell(0).utilization == 0.0


class TestUtilization:
    def test_formula(self):
        assert utilization(10, 2, 10) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            utilization(1, 0, 1)
        with pytest.raises(ValueError):
            utilization(1, 1, 0)
        with pytest.raises(ValueError):
            utilization(-1, 1, 1)

    def test_report_properties(self):
        report = UtilizationReport(
            processing_elements=3, steps=10, mac_operations=12, useful_operations=9
        )
        assert report.utilization == pytest.approx(0.4)
        assert report.effective_utilization == pytest.approx(0.3)
        assert report.capacity == 30
        assert "A=3" in report.describe()

    def test_report_defaults_useful_to_macs(self):
        report = UtilizationReport(processing_elements=2, steps=5, mac_operations=4)
        assert report.effective_utilization == report.utilization


class TestTagFormatter:
    def test_untagged_shows_value(self):
        item = ScheduledValue(cycle=0, value=1.25)
        assert default_tag_formatter(item) == "1.25"

    def test_simple_tag(self):
        assert default_tag_formatter(ScheduledValue(0, 1.0, tag=("x", 3))) == "x3"

    def test_pass_index_renders_as_superscript(self):
        assert default_tag_formatter(ScheduledValue(0, 1.0, tag=("y", 2, 1))) == "y2^1"

    def test_bare_kind(self):
        assert default_tag_formatter(ScheduledValue(0, 1.0, tag=("b",))) == "b"


class TestDataFlowTrace:
    def make_trace(self):
        trace = DataFlowTrace()
        x = DataStream("x in")
        y = DataStream("y out")
        x.schedule(0, 1.0, ("x", 0))
        x.schedule(2, 2.0, ("x", 1))
        y.schedule(3, 5.0, ("y", 0))
        trace.add_stream("x in", x)
        trace.add_stream("y out", y)
        return trace

    def test_span(self):
        trace = self.make_trace()
        assert trace.first_cycle == 0
        assert trace.last_cycle == 3
        assert trace.total_cycles == 4

    def test_empty_trace(self):
        trace = DataFlowTrace()
        assert trace.total_cycles == 0
        assert render_dataflow_table(trace) == "(empty trace)"

    def test_duplicate_row_name_rejected(self):
        trace = self.make_trace()
        with pytest.raises(ValueError):
            trace.add_stream("x in", DataStream())

    def test_row_labels(self):
        trace = self.make_trace()
        assert trace.row_labels("x in") == ["x0", "x1"]

    def test_render_contains_all_labels_and_bubbles(self):
        table = self.make_trace().render()
        assert "Clock:" in table
        assert "x0" in table and "x1" in table and "y0" in table
        assert "." in table

    def test_render_with_cycle_step(self):
        table = self.make_trace().render(cycle_step=2)
        # Columns are cycles 0 and 2; the y value at cycle 3 is folded into
        # the column starting at cycle 2.
        assert "y0" in table
