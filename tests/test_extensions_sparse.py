"""Unit tests for the block-sparse DBT extension (Section 4 conclusions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matvec import SizeIndependentMatVec
from repro.errors import TransformError
from repro.extensions.sparse import BlockSparseDBTTransform, BlockSparseMatVec


def block_sparse_matrix(rng, block_rows, block_cols, w, density, pattern=None):
    """Dense-stored matrix with a given pattern of nonzero w x w blocks."""
    matrix = np.zeros((block_rows * w, block_cols * w))
    for i in range(block_rows):
        for j in range(block_cols):
            keep = pattern[i][j] if pattern is not None else rng.uniform() < density
            if keep:
                matrix[i * w : (i + 1) * w, j * w : (j + 1) * w] = rng.uniform(
                    -1.0, 1.0, size=(w, w)
                )
    return matrix


class TestTransformStructure:
    def test_fully_dense_pattern_matches_plain_dbt(self, rng):
        matrix = rng.uniform(-1.0, 1.0, size=(6, 9))
        sparse = BlockSparseDBTTransform(matrix, 3)
        assert sparse.separator_count == 0
        assert sparse.block_row_count == 6
        assert sparse.skipped_block_count == 0
        assert sparse.dense_block_row_count() == 6

    def test_zero_blocks_are_skipped(self, rng):
        pattern = [[True, False, True], [False, False, True]]
        matrix = block_sparse_matrix(rng, 2, 3, 3, 0.0, pattern)
        transform = BlockSparseDBTTransform(matrix, 3)
        assert transform.nonzero_block_count == 3
        assert transform.skipped_block_count == 3
        # Row 0 visits columns 0 and 2; row 1 visits column 2; one separator
        # is needed because the wrap column of row 0 (0) differs from the
        # first column of row 1 (2).
        assert transform.separator_count == 1
        assert transform.block_row_count == 4

    def test_separator_skipped_when_columns_align(self, rng):
        pattern = [[True, True, False], [True, False, False]]
        matrix = block_sparse_matrix(rng, 2, 3, 3, 0.0, pattern)
        transform = BlockSparseDBTTransform(matrix, 3)
        # Row 0 wraps to column 0, row 1 starts at column 0: no separator.
        assert transform.separator_count == 0
        assert transform.block_row_count == 3

    def test_empty_rows_never_enter_the_array(self, rng):
        pattern = [[False, False], [True, True], [False, False]]
        matrix = block_sparse_matrix(rng, 3, 2, 2, 0.0, pattern)
        transform = BlockSparseDBTTransform(matrix, 2)
        assert transform.empty_rows == [0, 2]
        assert all(plan.original_row == 1 for plan in transform.plans)

    def test_entirely_zero_matrix(self, rng):
        transform = BlockSparseDBTTransform(np.zeros((6, 6)), 3)
        assert transform.block_row_count == 0
        assert transform.nonzero_block_count == 0
        assert transform.empty_rows == [0, 1]

    def test_tolerance_controls_what_counts_as_zero(self, rng):
        matrix = np.full((3, 3), 1e-9)
        assert BlockSparseDBTTransform(matrix, 3).nonzero_block_count == 1
        assert (
            BlockSparseDBTTransform(matrix, 3, tolerance=1e-6).nonzero_block_count == 0
        )
        with pytest.raises(TransformError):
            BlockSparseDBTTransform(matrix, 3, tolerance=-1.0)

    def test_band_contains_only_nonzero_block_triangles(self, rng):
        pattern = [[True, False], [False, True]]
        matrix = block_sparse_matrix(rng, 2, 2, 3, 0.0, pattern)
        transform = BlockSparseDBTTransform(matrix, 3)
        real_rows = [p for p in transform.plans if not p.is_separator]
        assert [p.upper_source for p in real_rows] == [(0, 0), (1, 1)]
        assert [p.lower_source for p in real_rows] == [(0, 0), (1, 1)]


class TestSolverCorrectness:
    @pytest.mark.parametrize("density", [0.0, 0.2, 0.5, 0.8, 1.0])
    def test_matches_reference_across_densities(self, rng, density):
        matrix = block_sparse_matrix(rng, 4, 5, 3, density)
        x = rng.uniform(-1.0, 1.0, size=15)
        b = rng.uniform(-1.0, 1.0, size=12)
        solution = BlockSparseMatVec(3).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)

    def test_non_aligned_shapes(self, rng):
        matrix = block_sparse_matrix(rng, 3, 3, 3, 0.5)[:8, :7]
        x = rng.uniform(size=7)
        b = rng.uniform(size=8)
        solution = BlockSparseMatVec(3).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)

    def test_zero_matrix_returns_b_without_array_time(self, rng):
        b = rng.uniform(size=6)
        solution = BlockSparseMatVec(3).solve(np.zeros((6, 6)), rng.uniform(size=6), b)
        assert np.array_equal(solution.y, b)
        assert solution.measured_steps == 0
        assert solution.saving == 1.0

    def test_shape_validation(self, rng):
        with pytest.raises(TransformError):
            BlockSparseMatVec(3).solve(rng.uniform(size=(3, 4)), rng.uniform(size=3))


class TestTimeSaving:
    def test_sparse_is_never_slower_than_dense_dbt(self, rng):
        for density in (0.1, 0.4, 0.7, 1.0):
            matrix = block_sparse_matrix(rng, 4, 4, 3, density)
            x = rng.uniform(size=12)
            sparse = BlockSparseMatVec(3).solve(matrix, x)
            dense = SizeIndependentMatVec(3).solve(matrix, x)
            assert np.allclose(sparse.y, dense.y)
            assert sparse.measured_steps <= dense.measured_steps
            assert sparse.dense_steps == dense.measured_steps

    def test_saving_grows_as_density_drops(self, rng):
        savings = []
        for density in (0.9, 0.5, 0.2):
            matrix = block_sparse_matrix(rng, 5, 5, 3, density)
            x = rng.uniform(size=15)
            savings.append(BlockSparseMatVec(3).solve(matrix, x).saving)
        assert savings == sorted(savings)

    def test_feedback_delay_still_w(self, rng):
        matrix = block_sparse_matrix(rng, 4, 4, 3, 0.5)
        x = rng.uniform(size=12)
        solution = BlockSparseMatVec(3).solve(matrix, x)
        if solution.run is not None and solution.run.feedback_events:
            assert set(solution.run.feedback_delays()) == {3}
