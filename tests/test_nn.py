"""The NN inference subsystem: quantization, registry, plans, MLP graphs.

The headline contract (ISSUE 6): a 3-layer int8 MLP forward pass compiles
to ONE plan-cached PipelineProgram — zero plan builds after warmup — and
matches the pure-float reference within the analytically derived
quantization bound on every layer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ArraySpec, ExecutionOptions, Graph, GraphCompiler, Solver
from repro.analysis.trajectory import record_trajectory_point
from repro.errors import ProblemKindError, ShapeError
from repro.graph import problem_types
from repro.instrumentation import counters
from repro.nn import (
    INT8_MAX,
    INT8_MIN,
    MLP,
    Bias,
    Dense,
    Dequantize,
    QuantParams,
    Quantize,
    QuantizedMLP,
    Relu,
)

NN_KINDS = ("dense", "bias", "relu", "quantize", "dequantize")


def make_mlp(rng, sizes=(6, 8, 5, 3)) -> MLP:
    """A small random MLP with the layer widths of ``sizes``."""
    layers = []
    for fan_in, fan_out in zip(sizes, sizes[1:]):
        layers.append(
            (
                rng.normal(size=(fan_out, fan_in)) / np.sqrt(fan_in),
                rng.normal(size=fan_out) * 0.1,
            )
        )
    return MLP(layers)


class TestQuantParams:
    def test_round_trip_within_half_step(self, rng):
        params = QuantParams.from_range(-2.0, 3.0)
        values = rng.uniform(-2.0, 3.0, size=100)
        recovered = params.dequantize(params.quantize(values))
        assert np.all(np.abs(recovered - values) <= params.step_error + 1e-12)
        assert np.all(params.round_trip_error(values) <= params.step_error)

    def test_saturation_clips_to_int8_range(self):
        params = QuantParams.from_range(-1.0, 1.0)
        codes = params.quantize(np.array([-100.0, 100.0, 0.0]))
        assert codes.dtype == np.int8
        assert codes[0] == INT8_MIN
        assert codes[1] == INT8_MAX

    def test_from_range_always_covers_zero(self):
        # A strictly positive calibration range must still represent 0.0
        # (ReLU outputs and zero-padding both rely on it).
        params = QuantParams.from_range(2.0, 6.0)
        assert params.dequantize(params.quantize(np.zeros(1)))[0] == pytest.approx(
            0.0, abs=params.step_error
        )

    def test_degenerate_range_is_identity_scale(self):
        params = QuantParams.from_range(0.0, 0.0)
        assert params.scale == 1.0
        assert params.zero_point == 0

    def test_symmetric_params(self):
        params = QuantParams.symmetric(4.0)
        assert params.zero_point == 0
        assert params.quantize(np.array([4.0]))[0] == INT8_MAX
        assert params.quantize(np.array([-4.0]))[0] == -INT8_MAX

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)
        with pytest.raises(ValueError):
            QuantParams(scale=-1.0)
        with pytest.raises(ValueError):
            QuantParams(scale=1.0, zero_point=200)


class TestRegistry:
    """Satellite 1: one source of truth for the kind -> class mapping."""

    def test_nn_kinds_registered(self):
        from repro.api.registry import registered_kinds

        assert set(registered_kinds()) >= set(NN_KINDS)

    def test_problem_types_single_source_of_truth(self):
        types = Solver.problem_types()
        assert types == problem_types()
        assert types["dense"] is Dense
        assert types["bias"] is Bias
        assert types["relu"] is Relu
        assert types["quantize"] is Quantize
        assert types["dequantize"] is Dequantize

    def test_did_you_mean_suggests_dense(self):
        solver = Solver(ArraySpec(w=3))
        with pytest.raises(ProblemKindError, match="did you mean 'dense'"):
            solver.solve("dens", np.eye(3), np.ones(3))

    def test_handlers_expose_problem_classes(self):
        from repro.api.registry import get_handler

        for kind in NN_KINDS:
            handler = get_handler(kind)
            assert handler.problem_class is problem_types()[kind]


class TestDtypeMode:
    def test_invalid_dtype_mode_rejected(self):
        with pytest.raises(ValueError, match="dtype_mode"):
            ExecutionOptions(dtype_mode="int4")

    def test_dtype_mode_participates_in_plan_key(self):
        solver = Solver(ArraySpec(w=3))
        float_plan = solver.plan("dense", shape=(4, 6))
        int_plan = solver.plan("dense", shape=(4, 6), dtype_mode="int8")
        assert float_plan.key != int_plan.key
        assert "dtype_mode='int8'" in int_plan.describe()
        assert "dtype_mode" not in float_plan.describe()
        # Same options re-plan to the cached object, not a rebuild.
        assert solver.plan("dense", shape=(4, 6), dtype_mode="int8") is int_plan

    def test_int8_plan_requires_integer_operands(self, rng):
        solver = Solver(
            ArraySpec(w=3), options=ExecutionOptions(dtype_mode="int8")
        )
        with pytest.raises(TypeError, match="integer"):
            solver.solve("dense", rng.normal(size=(4, 4)), rng.normal(size=4))


class TestMLPFloat:
    def test_graph_matches_numpy_forward(self, rng):
        mlp = make_mlp(rng)
        x = rng.normal(size=mlp.input_size)
        result = GraphCompiler(Solver(ArraySpec(w=4))).run(mlp.graph(x))
        assert np.allclose(result.output("logits"), mlp.forward(x))

    def test_shape_validation(self, rng):
        mlp = make_mlp(rng)
        with pytest.raises(ShapeError):
            mlp.forward(np.zeros(mlp.input_size + 1))
        with pytest.raises(ShapeError):
            MLP([(np.zeros((3, 4)), np.zeros(2))])
        with pytest.raises(ShapeError):
            MLP([(np.zeros((3, 4)), np.zeros(3)), (np.zeros((2, 5)), np.zeros(2))])
        with pytest.raises(ShapeError):
            MLP([])


class TestQuantizedMLP:
    def test_three_layer_graph_is_fourteen_stages(self, rng):
        mlp = make_mlp(rng)  # 3 layers
        qmlp = mlp.quantized([rng.normal(size=mlp.input_size)])
        program = GraphCompiler(Solver(ArraySpec(w=4))).compile(
            qmlp.graph(rng.normal(size=mlp.input_size))
        )
        assert len(program.stages) == 14
        assert program.n_levels == 14  # a pure chain: one stage per level

    def test_every_layer_within_analytic_bound(self, rng):
        mlp = make_mlp(rng)
        calibration = [rng.normal(size=mlp.input_size) for _ in range(8)]
        qmlp = mlp.quantized(calibration)
        solver = Solver(ArraySpec(w=4))
        for x in calibration[:3]:
            result = GraphCompiler(solver).run(qmlp.graph(x))
            bounds = qmlp.error_bounds(x)
            outputs = qmlp.float_outputs(result)
            pre, post = mlp.forward_trace(x)
            last = mlp.n_layers - 1
            for index, (weights, _bias) in enumerate(mlp.layers):
                h = x if index == 0 else post[index - 1]
                reference = {
                    f"dequant_{index}": weights @ h,
                    ("logits" if index == last else f"bias_{index}"): pre[index],
                }
                if index != last:
                    reference[f"relu_{index}"] = post[index]
                    reference[f"quant_{index}"] = post[index]
                for name, expected in reference.items():
                    error = np.abs(outputs[name] - expected)
                    assert np.all(error <= bounds[name] + 1e-9), name

    def test_warm_program_builds_zero_plans(self, rng):
        """The headline: one compiled program, zero builds after warmup."""
        mlp = make_mlp(rng)
        qmlp = mlp.quantized([rng.normal(size=mlp.input_size)])
        solver = Solver(ArraySpec(w=4))
        compiler = GraphCompiler(solver)
        # Warmup: compiles all 14 stage plans once.
        warmup = compiler.run(qmlp.graph(rng.normal(size=mlp.input_size)))
        assert warmup.compile_plan_builds > 0
        # Fresh input, fresh graph, same shapes: every plan is cache-hot.
        x = rng.normal(size=mlp.input_size)
        before = counters.snapshot()
        result = compiler.run(qmlp.graph(x))
        delta = counters.delta(before)
        assert delta.plan_builds == 0
        assert delta.transform_constructions == 0
        assert result.warm
        assert result.compile_plan_builds == 0

    def test_simulate_and_vectorized_graphs_bit_identical(self, rng):
        mlp = make_mlp(rng, sizes=(5, 7, 4))
        qmlp = mlp.quantized([rng.normal(size=5) for _ in range(4)])
        x = rng.normal(size=5)
        results = {}
        for backend in ("simulate", "vectorized"):
            solver = Solver(
                ArraySpec(w=3), options=ExecutionOptions(backend=backend)
            )
            results[backend] = GraphCompiler(solver).run(qmlp.graph(x))
        simulated, vectorized = results["simulate"], results["vectorized"]
        assert simulated.kinds == vectorized.kinds
        for sim, vec in zip(simulated.solutions, vectorized.solutions):
            assert sim.values.dtype == vec.values.dtype
            assert np.array_equal(sim.values, vec.values)

    def test_weight_quantization_must_be_symmetric(self, rng):
        mlp = make_mlp(rng, sizes=(4, 3))
        with pytest.raises(ValueError, match="symmetric"):
            QuantizedMLP(
                mlp,
                input_params=QuantParams(scale=0.1),
                weight_params=[QuantParams(scale=0.1, zero_point=3)],
                activation_params=[],
            )

    def test_calibration_requires_inputs(self, rng):
        mlp = make_mlp(rng, sizes=(4, 3))
        with pytest.raises(ShapeError):
            mlp.quantized([])

    def test_quantize_params_sugar_matches_explicit(self, rng):
        x = rng.normal(size=5)
        params = QuantParams.from_range(-2.0, 2.0)
        solver = Solver(ArraySpec(w=3))
        sugar = GraphCompiler(solver).run(Graph(Quantize(x, params)))
        explicit = GraphCompiler(solver).run(
            Graph(Quantize(x, params.scale, params.zero_point))
        )
        assert np.array_equal(sugar.values, explicit.values)
        with pytest.raises(TypeError):
            Quantize(x, params, 3)


class TestTrajectoryFreshFile:
    """Satellite 2: the appender stays idempotent on a fresh BENCH file."""

    def test_same_sha_updates_in_place(self, tmp_path):
        path = tmp_path / "BENCH_nn.json"
        first = record_trajectory_point(
            path, {"benchmark": "nn_inference", "git_sha": "abc", "speedup": 1.0}
        )
        assert len(first) == 1
        second = record_trajectory_point(
            path, {"benchmark": "nn_inference", "git_sha": "abc", "speedup": 2.0}
        )
        assert len(second) == 1
        assert second[0]["speedup"] == 2.0

    def test_new_sha_appends(self, tmp_path):
        path = tmp_path / "BENCH_nn.json"
        record_trajectory_point(
            path, {"benchmark": "nn_inference", "git_sha": "abc"}
        )
        trajectory = record_trajectory_point(
            path, {"benchmark": "nn_inference", "git_sha": "def"}
        )
        assert len(trajectory) == 2

    def test_missing_file_is_created(self, tmp_path):
        path = tmp_path / "nested" / "BENCH_nn.json"
        path.parent.mkdir()
        trajectory = record_trajectory_point(
            path, {"benchmark": "nn_inference", "git_sha": None}
        )
        assert path.exists()
        assert len(trajectory) == 1
