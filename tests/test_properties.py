"""Property-based tests (hypothesis) of the core invariants.

These tests exercise the transformations and simulators over randomly drawn
problem shapes and contents, checking the invariants the paper's
construction relies on:

* DBT band completeness and uniqueness of element placement,
* exact functional equivalence of the simulated pipelines with the dense
  reference for arbitrary shapes and values,
* the closed-form step counts for every shape, and
* structural properties of the band matrix type itself.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.analytic import matvec_steps
from repro.core.dbt import DBTByRowsTransform
from repro.core.matmul import SizeIndependentMatMul
from repro.core.matvec import SizeIndependentMatVec
from repro.core.operands import MatMulOperands
from repro.matrices.banded import BandMatrix
from repro.matrices.blocks import split_udl, triangular_split
from repro.matrices.padding import block_count, pad_matrix

# Keep the deadline generous: every example runs a cycle-accurate simulation.
SIM_SETTINGS = settings(max_examples=25, deadline=None)
FAST_SETTINGS = settings(max_examples=100, deadline=None)


dimension = st.integers(min_value=1, max_value=12)
array_size = st.integers(min_value=1, max_value=5)
seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


@st.composite
def matvec_instances(draw):
    n = draw(dimension)
    m = draw(dimension)
    w = draw(array_size)
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    matrix = rng.uniform(-10.0, 10.0, size=(n, m))
    x = rng.uniform(-10.0, 10.0, size=m)
    b = rng.uniform(-10.0, 10.0, size=n)
    return matrix, x, b, w


@st.composite
def matmul_instances(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    p = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=6))
    w = draw(st.integers(min_value=1, max_value=3))
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    a = rng.uniform(-5.0, 5.0, size=(n, p))
    b = rng.uniform(-5.0, 5.0, size=(p, m))
    e = rng.uniform(-5.0, 5.0, size=(n, m))
    return a, b, e, w


class TestTriangularSplitProperties:
    @FAST_SETTINGS
    @given(seed=seeds, size=st.integers(min_value=1, max_value=8))
    def test_split_partitions_block(self, seed, size):
        block = np.random.default_rng(seed).uniform(-1, 1, size=(size, size))
        upper, lower = triangular_split(block)
        assert np.array_equal(upper + lower, block)
        assert np.array_equal(upper, np.triu(upper))
        assert np.array_equal(lower, np.tril(lower, k=-1))

    @FAST_SETTINGS
    @given(seed=seeds, size=st.integers(min_value=1, max_value=8))
    def test_udl_partitions_block(self, seed, size):
        block = np.random.default_rng(seed).uniform(-1, 1, size=(size, size))
        u, d, l = split_udl(block)
        assert np.array_equal(u + d + l, block)


class TestBandMatrixProperties:
    @FAST_SETTINGS
    @given(
        seed=seeds,
        rows=st.integers(min_value=1, max_value=10),
        cols=st.integers(min_value=1, max_value=10),
        lower=st.integers(min_value=0, max_value=4),
        upper=st.integers(min_value=0, max_value=4),
    )
    def test_dense_roundtrip(self, seed, rows, cols, lower, upper):
        rng = np.random.default_rng(seed)
        dense = rng.uniform(-1, 1, size=(rows, cols))
        i = np.arange(rows)[:, None]
        j = np.arange(cols)[None, :]
        dense = dense * ((j - i >= -lower) & (j - i <= upper))
        band = BandMatrix.from_dense(dense, lower=lower, upper=upper)
        assert np.allclose(band.to_dense(), dense)
        assert np.allclose(band.transpose().to_dense(), dense.T)

    @SIM_SETTINGS
    @given(
        seed=seeds,
        size=st.integers(min_value=1, max_value=8),
        lower=st.integers(min_value=0, max_value=3),
        upper=st.integers(min_value=0, max_value=3),
    )
    def test_matvec_matches_dense(self, seed, size, lower, upper):
        rng = np.random.default_rng(seed)
        dense = rng.uniform(-1, 1, size=(size, size))
        i = np.arange(size)[:, None]
        j = np.arange(size)[None, :]
        dense = dense * ((j - i >= -lower) & (j - i <= upper))
        band = BandMatrix.from_dense(dense, lower=lower, upper=upper)
        x = rng.uniform(-1, 1, size=size)
        assert np.allclose(band.matvec(x), dense @ x)


class TestDBTStructuralProperties:
    @FAST_SETTINGS
    @given(
        seed=seeds,
        n=dimension,
        m=dimension,
        w=array_size,
    )
    def test_band_full_and_unique(self, seed, n, m, w):
        matrix = np.random.default_rng(seed).uniform(-1, 1, size=(n, m))
        transform = DBTByRowsTransform(matrix, w)
        transform.verify_conditions()
        filled, total = transform.band_fill_report()
        assert filled == total
        origins = list(transform.provenance().values())
        assert len(origins) == len(set(origins))
        padded = pad_matrix(matrix, w)
        assert len(origins) == padded.size

    @FAST_SETTINGS
    @given(seed=seeds, n=dimension, m=dimension, w=array_size)
    def test_band_dimensions_follow_block_counts(self, seed, n, m, w):
        matrix = np.random.default_rng(seed).uniform(-1, 1, size=(n, m))
        transform = DBTByRowsTransform(matrix, w)
        n_bar, m_bar = block_count(n, w), block_count(m, w)
        assert transform.band_rows == n_bar * m_bar * w
        assert transform.band_cols == transform.band_rows + w - 1
        assert transform.transform_x(np.zeros(m)).shape == (transform.band_cols,)


class TestPipelineProperties:
    @SIM_SETTINGS
    @given(instance=matvec_instances())
    def test_matvec_pipeline_equals_reference(self, instance):
        matrix, x, b, w = instance
        solution = SizeIndependentMatVec(w).solve(matrix, x, b)
        assert np.allclose(solution.y, matrix @ x + b)

    @SIM_SETTINGS
    @given(instance=matvec_instances())
    def test_matvec_steps_equal_closed_form(self, instance):
        matrix, x, _b, w = instance
        solution = SizeIndependentMatVec(w).solve(matrix, x)
        n_bar = block_count(matrix.shape[0], w)
        m_bar = block_count(matrix.shape[1], w)
        assert solution.measured_steps == matvec_steps(n_bar, m_bar, w)

    @SIM_SETTINGS
    @given(instance=matvec_instances())
    def test_matvec_feedback_delays_equal_w(self, instance):
        matrix, x, b, w = instance
        solution = SizeIndependentMatVec(w).solve(matrix, x, b)
        assert all(delay == w for delay in solution.feedback_delays)

    @settings(max_examples=15, deadline=None)
    @given(instance=matmul_instances())
    def test_matmul_pipeline_equals_reference(self, instance):
        a, b, e, w = instance
        solution = SizeIndependentMatMul(w).solve(a, b, e)
        assert np.allclose(solution.c, a @ b + e)

    @settings(max_examples=15, deadline=None)
    @given(instance=matmul_instances())
    def test_matmul_steps_equal_closed_form(self, instance):
        a, b, _e, w = instance
        solution = SizeIndependentMatMul(w).solve(a, b)
        assert solution.measured_steps == solution.predicted_steps


class TestOperandProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=seeds,
        n=st.integers(min_value=1, max_value=5),
        p=st.integers(min_value=1, max_value=5),
        m=st.integers(min_value=1, max_value=5),
        w=st.integers(min_value=1, max_value=3),
    )
    def test_product_coverage_holds_for_all_shapes(self, seed, n, p, m, w):
        rng = np.random.default_rng(seed)
        operands = MatMulOperands(
            rng.uniform(size=(n, p)), rng.uniform(size=(p, m)), w
        )
        covered, duplicated = operands.verify_product_coverage()
        assert covered == block_count(n, w) * block_count(p, w) * block_count(m, w) * w ** 3
        assert duplicated <= max(0, (w - 1)) ** 3
        assert operands.inner_origins_consistent()
