"""Cross-backend equivalence: vectorized and compiled against the simulator.

The contract of the ``vectorized`` and ``compiled`` backends is
*bit-identical outputs and identical structural metrics* — not
approximate agreement.  These tests sweep (shape, w, seed) grids over
all six primary problem kinds plus the baselines, solving each instance
on every backend and asserting exact equality of values, step counts,
utilizations and feedback statistics (``both()`` checks the compiled
backend inline, so every grid built on it covers all three).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.backends import (
    BackendSpec,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.plans import CachedMatVec, MatVecPlan
from repro.errors import BackendError


def solver_for(w: int, backend: str, **overrides) -> Solver:
    return Solver(
        ArraySpec(w=w), options=ExecutionOptions(backend=backend, **overrides)
    )


def both(kind: str, w: int, operands, **overrides):
    """Solve one instance on all three backends; returns (simulated, vectorized).

    The compiled solution is asserted bit-identical to the vectorized
    one inline — values, dtype, metrics, stats and feedback — so the
    historical two-backend call sites extend the contract to the
    compiled backend without touching their own assertions.
    """
    simulated = solver_for(w, "simulate", **overrides).solve(kind, *operands)
    vectorized = solver_for(w, "vectorized", **overrides).solve(kind, *operands)
    compiled = solver_for(w, "compiled", **overrides).solve(kind, *operands)
    assert np.array_equal(compiled.values, vectorized.values)
    assert np.asarray(compiled.values).dtype == np.asarray(vectorized.values).dtype
    assert compiled.measured_steps == vectorized.measured_steps
    assert compiled.predicted_steps == vectorized.predicted_steps
    assert compiled.measured_utilization == vectorized.measured_utilization
    assert compiled.predicted_utilization == vectorized.predicted_utilization
    assert compiled.stats == vectorized.stats
    if vectorized.feedback is not None:
        assert compiled.feedback.count == vectorized.feedback.count
        assert compiled.feedback.min_delay == vectorized.feedback.min_delay
        assert compiled.feedback.max_delay == vectorized.feedback.max_delay
    return simulated, vectorized


def assert_metrics_match(simulated, vectorized):
    assert vectorized.measured_steps == simulated.measured_steps
    assert vectorized.predicted_steps == simulated.predicted_steps
    assert vectorized.measured_utilization == simulated.measured_utilization
    assert vectorized.predicted_utilization == simulated.predicted_utilization
    assert vectorized.feedback.count == simulated.feedback.count
    assert vectorized.feedback.min_delay == simulated.feedback.min_delay
    assert vectorized.feedback.max_delay == simulated.feedback.max_delay


class TestBackendRegistry:
    def test_backends_registered(self):
        assert set(available_backends()) >= {"simulate", "vectorized"}
        assert get_backend("simulate").supports_trace
        assert not get_backend("vectorized").supports_trace

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendError):
            resolve_backend("quantum")
        with pytest.raises(BackendError):
            ExecutionOptions(backend="quantum")

    def test_auto_resolution_rule(self):
        assert resolve_backend("auto") == "vectorized"
        assert resolve_backend("auto", record_trace=True) == "simulate"
        assert resolve_backend("simulate", record_trace=True) == "simulate"

    def test_vectorized_cannot_trace(self):
        with pytest.raises(BackendError):
            resolve_backend("vectorized", record_trace=True)
        with pytest.raises(BackendError):
            MatVecPlan(6, 6, 3, record_trace=True, backend="vectorized")

    def test_invalid_registration_rejected(self):
        with pytest.raises(BackendError):
            register_backend(BackendSpec(name="auto", description="reserved"))

    def test_compiled_backend_registered(self):
        assert "compiled" in available_backends()
        assert not get_backend("compiled").supports_trace
        with pytest.raises(BackendError):
            resolve_backend("compiled", record_trace=True)

    def test_unknown_backend_suggests_nearest(self):
        with pytest.raises(BackendError, match="did you mean 'compiled'"):
            resolve_backend("compilde")
        with pytest.raises(BackendError, match="did you mean 'vectorized'"):
            ExecutionOptions(backend="vectorised")
        # A name close to nothing gets the plain listing, no suggestion.
        with pytest.raises(BackendError, match="available:") as excinfo:
            resolve_backend("quantum")
        assert "did you mean" not in str(excinfo.value)

    def test_auto_does_not_resolve_to_compiled(self):
        # Policy lock: ``auto`` stays on vectorized (or simulate under a
        # trace) until the compiled backend is soak-proven; flipping this
        # test is the deliberate act that changes the default.
        assert resolve_backend("auto") == "vectorized"
        assert resolve_backend("auto", record_trace=True) == "simulate"

    def test_auto_plans_use_vectorized_engine(self):
        solver = Solver(ArraySpec(w=3))  # default options: backend="auto"
        plan = solver.plan("matvec", shape=(6, 6))
        assert plan.executor.backend == "vectorized"
        traced = solver.plan("matvec", shape=(6, 6), record_trace=True)
        assert traced.executor.backend == "simulate"

    def test_trace_still_available_through_auto(self, rng):
        solver = Solver(ArraySpec(w=3))
        solution = solver.solve(
            "matvec",
            rng.normal(size=(6, 6)),
            rng.normal(size=6),
            options=ExecutionOptions(record_trace=True),
        )
        assert solution.raw.trace is not None


class TestMatVecEquivalence:
    @pytest.mark.parametrize("w", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("n", [1, 4, 7, 12])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_simulator(self, w, n, seed):
        rng = np.random.default_rng(seed)
        m = n + (seed + 1) * 2 - 3  # exercise wide, square-ish and narrow shapes
        m = max(1, m)
        a = rng.normal(size=(n, m))
        x = rng.normal(size=m)
        b = rng.normal(size=n) if seed % 2 == 0 else None
        operands = (a, x, b) if b is not None else (a, x)
        simulated, vectorized = both("matvec", w, operands)
        assert np.array_equal(vectorized.values, simulated.values)
        assert_metrics_match(simulated, vectorized)

    @pytest.mark.parametrize("w", [2, 3, 4])
    @pytest.mark.parametrize("n", [8, 11])
    def test_overlapped_matches_simulator(self, w, n, rng):
        a = rng.normal(size=(n, n))
        x = rng.normal(size=n)
        b = rng.normal(size=n)
        simulated, vectorized = both("matvec", w, (a, x, b), overlapped=True)
        assert np.array_equal(vectorized.values, simulated.values)
        assert_metrics_match(simulated, vectorized)

    def test_paired_batch_matches_simulator(self, rng):
        batch = [
            (rng.normal(size=(9, 9)), rng.normal(size=9)) for _ in range(4)
        ]
        simulated = solver_for(3, "simulate").solve_batch("matvec", batch)
        for backend in ("vectorized", "compiled"):
            solutions = solver_for(3, backend).solve_batch("matvec", batch)
            for sim_solution, solution in zip(simulated, solutions):
                assert sim_solution.stats.get("paired") and solution.stats.get("paired")
                assert np.array_equal(solution.values, sim_solution.values)
                assert solution.measured_steps == sim_solution.measured_steps


class TestMatMulEquivalence:
    @pytest.mark.parametrize("w", [1, 2, 3, 4])
    @pytest.mark.parametrize("shape", [(1, 1, 1), (3, 4, 2), (5, 5, 5), (6, 3, 7)])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_simulator(self, w, shape, seed):
        n, p, m = shape
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, p))
        b = rng.normal(size=(p, m))
        e = rng.normal(size=(n, m)) if seed % 2 == 0 else None
        operands = (a, b, e) if e is not None else (a, b)
        simulated, vectorized = both("matmul", w, operands)
        assert np.array_equal(vectorized.values, simulated.values)
        assert_metrics_match(simulated, vectorized)
        assert vectorized.feedback.regular == simulated.feedback.regular
        assert vectorized.feedback.irregular == simulated.feedback.irregular


class TestBlockedPipelineEquivalence:
    """LU, triangular and Gauss-Seidel run many array products per solve;
    identical products imply identical pipelines, checked end to end."""

    @pytest.mark.parametrize("w", [2, 3])
    @pytest.mark.parametrize("n", [4, 7])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_triangular(self, w, n, seed):
        rng = np.random.default_rng(seed)
        t = np.tril(rng.normal(size=(n, n))) + (n + 2) * np.eye(n)
        b = rng.normal(size=n)
        for lower, matrix in ((True, t), (False, t.T)):
            simulated = solver_for(w, "simulate").solve(
                "triangular", matrix, b, lower=lower
            )
            for backend in ("vectorized", "compiled"):
                solution = solver_for(w, backend).solve(
                    "triangular", matrix, b, lower=lower
                )
                assert np.array_equal(solution.values, simulated.values)
                assert solution.measured_steps == simulated.measured_steps
                assert solution.stats == simulated.stats

    @pytest.mark.parametrize("w", [2, 3])
    @pytest.mark.parametrize("n", [4, 7])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_lu(self, w, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + (n + 3) * np.eye(n)
        simulated = solver_for(w, "simulate").solve("lu", a)
        for backend in ("vectorized", "compiled"):
            solution = solver_for(w, backend).solve("lu", a)
            for sim_factor, factor in zip(simulated.values, solution.values):
                assert np.array_equal(factor, sim_factor)
            assert solution.measured_steps == simulated.measured_steps
            assert solution.stats == simulated.stats

    @pytest.mark.parametrize("w", [2, 3])
    @pytest.mark.parametrize("n", [4, 6])
    def test_gauss_seidel(self, w, n, rng):
        a = rng.normal(size=(n, n)) + (2 * n) * np.eye(n)
        b = rng.normal(size=n)
        simulated = solver_for(w, "simulate").solve("gauss_seidel", a, b)
        for backend in ("vectorized", "compiled"):
            solution = solver_for(w, backend).solve("gauss_seidel", a, b)
            assert np.array_equal(solution.values, simulated.values)
            assert solution.measured_steps == simulated.measured_steps
            assert solution.stats == simulated.stats


class TestSparseEquivalence:
    @pytest.mark.parametrize("w", [2, 3, 4])
    @pytest.mark.parametrize("n", [6, 10])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_simulator(self, w, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n))
        blocks = -(-n // w)
        for r in range(blocks):
            for s in range(blocks):
                if rng.random() < 0.5:
                    a[r * w : (r + 1) * w, s * w : (s + 1) * w] = 0.0
        x = rng.normal(size=n)
        b = rng.normal(size=n) if seed % 2 == 0 else None
        operands = (a, x, b) if b is not None else (a, x)
        simulated, vectorized = both("sparse", w, operands)
        assert np.array_equal(vectorized.values, simulated.values)
        assert vectorized.measured_steps == simulated.measured_steps
        assert vectorized.measured_utilization == simulated.measured_utilization
        assert vectorized.stats == simulated.stats


class TestBaselineEquivalence:
    @pytest.mark.parametrize("kind", ["naive_matvec", "block_partitioned"])
    @pytest.mark.parametrize("w", [2, 3])
    def test_matvec_baselines(self, kind, w, rng):
        a = rng.normal(size=(7, 5))
        x = rng.normal(size=5)
        b = rng.normal(size=7)
        simulated, vectorized = both(kind, w, (a, x, b))
        assert np.array_equal(vectorized.values, simulated.values)
        assert vectorized.measured_steps == simulated.measured_steps
        assert vectorized.measured_utilization == simulated.measured_utilization
        assert vectorized.stats == simulated.stats

    @pytest.mark.parametrize("w", [2, 3])
    def test_naive_matmul(self, w, rng):
        a = rng.normal(size=(5, 4))
        b = rng.normal(size=(4, 6))
        e = rng.normal(size=(5, 6))
        simulated, vectorized = both("naive_matmul", w, (a, b, e))
        assert np.array_equal(vectorized.values, simulated.values)
        assert vectorized.measured_steps == simulated.measured_steps
        assert vectorized.measured_utilization == simulated.measured_utilization

    @pytest.mark.parametrize("w", [2, 4])
    def test_prt(self, w, rng):
        a = rng.normal(size=(w, w))
        x = rng.normal(size=w)
        simulated, vectorized = both("prt", w, (a, x))
        assert np.array_equal(vectorized.values, simulated.values)
        assert vectorized.measured_steps == simulated.measured_steps


class TestNNEquivalence:
    """The NN kinds honour the same bit-identity contract as the rest.

    The int8 dense accumulator is additionally checked against the exact
    integer reference ``W @ (x - zero_point)`` — integer MACs are exact in
    float64 far beyond int8 ranges, so both backends must reproduce it
    bit for bit, not approximately.
    """

    @pytest.mark.parametrize("w", [1, 2, 3, 4])
    @pytest.mark.parametrize("n", [1, 4, 7, 12])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_dense_int8_matches_simulator(self, w, n, seed):
        rng = np.random.default_rng(seed)
        m = max(1, n + (seed + 1) * 2 - 3)
        matrix = rng.integers(-128, 128, size=(n, m)).astype(np.int8)
        x = rng.integers(-128, 128, size=m).astype(np.int8)
        zero_point = int(rng.integers(-10, 11))
        simulated = solver_for(w, "simulate", dtype_mode="int8").solve(
            "dense", matrix, x, x_zero_point=zero_point
        )
        expected = matrix.astype(np.int64) @ (x.astype(np.int64) - zero_point)
        assert simulated.values.dtype == np.int32
        assert np.array_equal(simulated.values, expected)
        assert simulated.stats["dtype_mode"] == "int8"
        for backend in ("vectorized", "compiled"):
            solution = solver_for(w, backend, dtype_mode="int8").solve(
                "dense", matrix, x, x_zero_point=zero_point
            )
            assert solution.values.dtype == np.int32
            assert np.array_equal(solution.values, simulated.values)
            assert_metrics_match(simulated, solution)
            assert solution.stats["dtype_mode"] == "int8"

    @pytest.mark.parametrize("w", [2, 3])
    @pytest.mark.parametrize("n", [5, 9])
    def test_dense_float_matches_simulator(self, w, n, rng):
        a = rng.normal(size=(n, n + 1))
        x = rng.normal(size=n + 1)
        simulated, vectorized = both("dense", w, (a, x))
        assert np.array_equal(vectorized.values, simulated.values)
        assert_metrics_match(simulated, vectorized)
        assert simulated.stats["dtype_mode"] == "float64"

    @pytest.mark.parametrize("w", [2, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_elementwise_kinds_match_simulator(self, w, seed):
        rng = np.random.default_rng(seed)
        n = 6 + seed
        accumulator = rng.integers(-(2**20), 2**20, size=n)
        cases = [
            ("bias", (rng.normal(size=n), rng.normal(size=n)), {}),
            ("relu", (rng.normal(size=n),), {}),
            ("quantize", (rng.normal(size=n),), {"scale": 0.1, "zero_point": 3}),
            ("dequantize", (accumulator,), {"scale": 0.03}),
        ]
        for kind, operands, kwargs in cases:
            simulated = solver_for(w, "simulate").solve(kind, *operands, **kwargs)
            for backend in ("vectorized", "compiled"):
                solution = solver_for(w, backend).solve(
                    kind, *operands, **kwargs
                )
                assert np.array_equal(solution.values, simulated.values), kind
                assert solution.values.dtype == simulated.values.dtype, kind
                assert solution.stats == simulated.stats, kind

    @pytest.mark.parametrize("w", [2, 4])
    def test_relu_preserves_integer_dtype(self, w, rng):
        codes = rng.integers(-1000, 1000, size=7).astype(np.int32)
        simulated, vectorized = both("relu", w, (codes,))
        assert simulated.values.dtype == np.int32
        assert vectorized.values.dtype == np.int32
        assert np.array_equal(vectorized.values, simulated.values)
        assert np.array_equal(simulated.values, np.maximum(codes, 0))


class TestSharedEngineBackend:
    def test_shared_matvec_engine_overrides_pipeline_backend(self, rng):
        """An injected engine carries its own backend, as documented."""
        from repro.extensions.triangular import SystolicTriangularSolver

        engine = CachedMatVec(3, backend="simulate")
        solver = SystolicTriangularSolver(3, matvec=engine, backend="vectorized")
        t = np.tril(rng.normal(size=(5, 5))) + 6 * np.eye(5)
        result = solver.solve_lower(t, rng.normal(size=5))
        assert np.allclose(t @ result.x, t @ np.linalg.solve(t, t @ result.x))
        # the shared engine's plans are simulator plans
        assert engine.backend == "simulate"
