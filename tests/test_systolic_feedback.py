"""Unit tests for ``repro.systolic.feedback``."""

from __future__ import annotations

import pytest

from repro.errors import FeedbackError
from repro.systolic.feedback import (
    ExternalSource,
    FeedbackSource,
    ShiftRegisterFeedback,
    SpiralFeedbackTopology,
)


class TestShiftRegisterFeedback:
    def test_delay_equals_register_count(self):
        register = ShiftRegisterFeedback(3)
        outputs = []
        outputs.append(register.shift((1.0, None)))
        outputs.append(register.shift(None))
        outputs.append(register.shift(None))
        outputs.append(register.shift(None))
        # The value pushed at the first shift emerges exactly 3 shifts later.
        assert outputs[:3] == [None, None, None]
        assert outputs[3] == (1.0, None)

    def test_bubbles_travel_like_values(self):
        register = ShiftRegisterFeedback(2)
        register.shift((1.0, ("y", 0)))
        register.shift((2.0, ("y", 1)))
        assert register.shift(None) == (1.0, ("y", 0))
        assert register.shift(None) == (2.0, ("y", 1))
        assert register.shift(None) is None

    def test_occupancy_peak(self):
        register = ShiftRegisterFeedback(4)
        register.shift((1.0, None))
        register.shift((2.0, None))
        assert register.occupied_peak == 2
        register.shift(None)
        register.shift(None)
        assert register.occupied_peak == 2

    def test_snapshot_and_pushes(self):
        register = ShiftRegisterFeedback(2)
        register.shift((5.0, None))
        snapshot = register.snapshot()
        assert len(snapshot) == 2
        assert snapshot[-1] == (5.0, None)
        assert register.pushes == 1

    def test_sources_are_lightweight_records(self):
        external = ExternalSource(value=2.0, tag=("b", 1))
        feedback = FeedbackSource(tag=("y", 1, 0))
        assert external.value == 2.0
        assert feedback.tag == ("y", 1, 0)


class TestSpiralFeedbackTopology:
    def test_every_loop_crosses_w_cells(self):
        for w in (1, 2, 3, 5, 8):
            topology = SpiralFeedbackTopology(w)
            assert all(loop.cells == w for loop in topology.loops)

    def test_loop_count_and_pairing(self):
        topology = SpiralFeedbackTopology(4)
        assert topology.loop_count == 4
        edges = dict(topology.edge_list())
        assert edges[0] == 0  # main diagonal feeds itself
        assert edges[1] == -3
        assert edges[2] == -2
        assert edges[3] == -1

    def test_register_counts_match_paper(self):
        topology = SpiralFeedbackTopology(3)
        # 2w for the main diagonal + w per sub-diagonal pair.
        assert topology.regular_register_count() == 2 * 3 + (3 - 1) * 3
        # 3 w (w - 1) / 2 extra for the irregular delays.
        assert topology.irregular_register_count() == 9
        assert topology.total_register_count() == 12 + 9

    def test_loop_lookup(self):
        topology = SpiralFeedbackTopology(3)
        loop = topology.loop_for_output(2)
        assert loop.input_offset == -1
        with pytest.raises(FeedbackError):
            topology.loop_for_output(5)

    def test_describe_mentions_every_loop(self):
        topology = SpiralFeedbackTopology(3)
        text = topology.describe()
        assert "auto-feedback" in text
        assert text.count("->") == topology.loop_count
        assert "irregular feedback registers: 9" in text

    def test_main_diagonal_flag(self):
        topology = SpiralFeedbackTopology(2)
        assert topology.loops[0].is_main_diagonal
        assert not topology.loops[1].is_main_diagonal
