"""Tests for the unified ``repro.api`` solver façade.

Covers the acceptance criteria of the api redesign: registry dispatch for
all six primary problem kinds, plan-cache hit/miss accounting, the
zero-transform-construction property of warm solves, ``solve_batch``
equivalence with sequential solves, and the legacy deprecation shims.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro.api import (
    ArraySpec,
    ExecutionOptions,
    ExecutionPlan,
    Solver,
    get_handler,
    registered_kinds,
)
from repro.api.plan import PlanCache
from repro.core.matvec import MatVecSolution, SizeIndependentMatVec
from repro.core.matmul import MatMulSolution, SizeIndependentMatMul
from repro.errors import ProblemKindError, ShapeError
from repro.instrumentation import counters


@pytest.fixture
def solver():
    return Solver(ArraySpec(w=4))


class TestConfig:
    def test_array_spec_validates(self):
        assert ArraySpec(3).w == 3
        assert ArraySpec.of(5).w == 5
        assert ArraySpec.of(ArraySpec(2)).w == 2
        with pytest.raises(Exception):
            ArraySpec(0)

    def test_options_are_hashable_and_mergeable(self):
        options = ExecutionOptions()
        assert hash(options) == hash(ExecutionOptions())
        overlapped = options.merged(overlapped=True)
        assert overlapped.overlapped and not options.overlapped
        with pytest.raises(ValueError):
            ExecutionOptions(gs_max_iterations=0)
        with pytest.raises(ValueError):
            ExecutionOptions(sparse_tolerance=-1.0)


class TestRegistryDispatch:
    """All six primary kinds solve correctly through the one façade."""

    def test_kinds_registered(self):
        kinds = registered_kinds()
        for kind in ("matvec", "matmul", "lu", "triangular", "gauss_seidel", "sparse"):
            assert kind in kinds

    def test_unknown_kind_raises(self, solver):
        with pytest.raises(ProblemKindError):
            solver.solve("cholesky", np.eye(3))
        with pytest.raises(ProblemKindError):
            get_handler("cholesky")

    def test_matvec(self, solver, rng):
        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        b = rng.normal(size=10)
        solution = solver.solve("matvec", a, x, b)
        assert solution.kind == "matvec"
        assert np.allclose(solution.values, a @ x + b)
        assert solution.measured_steps == solution.predicted_steps
        assert solution.feedback.count > 0
        assert solution.feedback.min_delay == solution.feedback.max_delay == 4
        assert "measured" in solution.summary()

    def test_matmul(self, solver, rng):
        a = rng.normal(size=(6, 9))
        b = rng.normal(size=(9, 5))
        e = rng.normal(size=(6, 5))
        solution = solver.solve("matmul", a, b, e)
        assert np.allclose(solution.values, a @ b + e)
        assert solution.measured_steps == solution.predicted_steps
        assert solution.feedback.regular is not None

    def test_lu(self, solver, rng):
        a = rng.normal(size=(6, 6)) + 6 * np.eye(6)
        solution = solver.solve("lu", a)
        l, u = solution.values
        assert np.allclose(l @ u, a)
        assert 0.0 < solution.stats["array_share"] <= 1.0

    def test_triangular_both_orientations(self, solver, rng):
        t = np.tril(rng.normal(size=(7, 7))) + 5 * np.eye(7)
        b = rng.normal(size=7)
        lower = solver.solve("triangular", t, b, lower=True)
        assert np.allclose(lower.values, np.linalg.solve(t, b))
        upper = solver.solve("triangular", t.T, b, lower=False)
        assert np.allclose(upper.values, np.linalg.solve(t.T, b))

    def test_gauss_seidel(self, solver, rng):
        a = rng.normal(size=(5, 5)) + 6 * np.eye(5)
        b = rng.normal(size=5)
        solution = solver.solve("gauss_seidel", a, b)
        assert solution.stats["converged"]
        assert np.allclose(a @ solution.values, b, atol=1e-8)

    def test_sparse(self, solver, rng):
        a = np.zeros((8, 8))
        a[:4, :4] = rng.normal(size=(4, 4))
        x = rng.normal(size=8)
        solution = solver.solve("sparse", a, x)
        assert np.allclose(solution.values, a @ x)
        assert solution.stats["skipped_blocks"] == 3
        assert solution.measured_steps < solution.stats["dense_steps"]

    def test_baseline_kinds_also_dispatch(self, solver, rng):
        a = rng.normal(size=(6, 5))
        x = rng.normal(size=5)
        for kind in ("naive_matvec", "block_partitioned"):
            solution = solver.solve(kind, a, x)
            assert np.allclose(solution.values, a @ x)
        block = rng.normal(size=(4, 4))
        x_block = rng.normal(size=4)
        prt = solver.solve("prt", block, x_block)
        assert np.allclose(prt.values, block @ x_block)
        mm = solver.solve("naive_matmul", a.T, a)
        assert np.allclose(mm.values, a.T @ a)


class TestPlanCache:
    def test_hit_miss_accounting(self, solver, rng):
        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        first = solver.solve("matvec", a, x)
        second = solver.solve("matvec", a, x)
        stats = solver.cache_stats
        assert stats.misses == 1
        assert stats.hits == 1
        assert not first.from_cache
        assert second.from_cache

    def test_explicit_plan_then_solve_hits(self, rng):
        """The acceptance scenario: plan once, solve twice, second hits."""
        solver = Solver(ArraySpec(w=4))
        plan = solver.plan("matvec", shape=(10, 7))
        assert isinstance(plan, ExecutionPlan)

        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        b = rng.normal(size=10)
        first = solver.solve("matvec", a, x, b)
        assert first.from_cache  # the explicit plan() call seeded the cache

        before = counters.snapshot()
        second = solver.solve("matvec", a, x, b)
        delta = counters.delta(before)
        assert second.from_cache
        assert delta.transform_constructions == 0  # zero new transform construction
        assert delta.plan_builds == 0
        assert np.array_equal(first.values, second.values)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SizeIndependentMatVec(4).solve(a, x, b)
        assert np.array_equal(second.values, legacy.y)

    def test_warm_matmul_builds_no_operands(self, solver, rng):
        a = rng.normal(size=(6, 9))
        b = rng.normal(size=(9, 5))
        solver.solve("matmul", a, b)
        before = counters.snapshot()
        warm = solver.solve("matmul", a, b)
        assert warm.from_cache
        assert counters.delta(before).transform_constructions == 0

    def test_distinct_shapes_and_options_get_distinct_plans(self, solver, rng):
        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        solver.solve("matvec", a, x)
        solver.solve("matvec", rng.normal(size=(8, 8)), rng.normal(size=8))
        plain = solver.plan("matvec", shape=(10, 7))
        overlapped = solver.plan("matvec", shape=(10, 7), overlapped=True)
        assert plain is not overlapped
        assert solver.cache_stats.size == 3

    def test_plan_is_immutable(self, solver):
        plan = solver.plan("matvec", shape=(6, 6))
        with pytest.raises(AttributeError):
            plan.kind = "matmul"

    def test_plan_shape_mismatch_raises(self, solver, rng):
        plan = solver.plan("matvec", shape=(6, 6))
        with pytest.raises(ShapeError):
            plan.execute(rng.normal(size=(5, 6)), rng.normal(size=6))

    def test_lru_eviction(self, rng):
        solver = Solver(ArraySpec(w=3), plan_cache_size=2)
        for n in (3, 4, 5):
            solver.solve("matvec", rng.normal(size=(n, 3)), rng.normal(size=3))
        stats = solver.cache_stats
        assert stats.size == 2
        assert stats.evictions == 1

    def test_cache_object_directly(self):
        cache = PlanCache(maxsize=1)
        assert cache.get(("matvec", (2, 2), 3, ExecutionOptions())) is None
        assert cache.stats.misses == 1

    def test_empty_cache_hit_rate_is_zero_not_an_error(self):
        from repro.api.plan import CacheStats

        assert PlanCache(maxsize=4).stats.hit_rate == 0.0
        assert CacheStats().hit_rate == 0.0
        assert CacheStats(hits=3, misses=1).hit_rate == pytest.approx(0.75)

    def test_evictions_survive_clear(self, rng):
        solver = Solver(ArraySpec(w=3), plan_cache_size=2)
        for n in (3, 4, 5):
            solver.solve("matvec", rng.normal(size=(n, 3)), rng.normal(size=3))
        assert solver.cache_stats.evictions == 1
        solver._cache.clear()
        stats = solver.cache_stats
        assert stats.size == 0
        assert stats.evictions == 1  # lifetime counters survive clear()
        assert stats.hit_rate == 0.0  # no hits yet, and no division by zero


class TestSolveBatch:
    def test_batch_matches_sequential(self, rng):
        solver = Solver(ArraySpec(w=4))
        batch = [
            (rng.normal(size=(10, 7)), rng.normal(size=7), rng.normal(size=10))
            for _ in range(5)
        ]
        batched = solver.solve_batch("matvec", batch)
        sequential = [solver.solve("matvec", *entry) for entry in batch]
        assert len(batched) == 5
        for got, want in zip(batched, sequential):
            assert np.array_equal(got.values, want.values)

    def test_batch_pairs_overlap_and_save_steps(self, rng):
        solver = Solver(ArraySpec(w=3))
        batch = [(rng.normal(size=(9, 9)), rng.normal(size=9)) for _ in range(4)]
        batched = solver.solve_batch("matvec", batch)
        assert all(solution.stats.get("paired") for solution in batched)
        # A pair shares one overlapped run: its cycle count is far below
        # two sequential executions of the paper's plain formula.
        sequential_steps = solver.solve("matvec", *batch[0]).measured_steps
        assert batched[0].measured_steps < 2 * sequential_steps * 0.75

    def test_odd_batch_tail_runs_plain(self, rng):
        solver = Solver(ArraySpec(w=3))
        batch = [(rng.normal(size=(6, 6)), rng.normal(size=6)) for _ in range(3)]
        batched = solver.solve_batch("matvec", batch)
        assert batched[-1].stats.get("paired") is None
        for entry, solution in zip(batch, batched):
            assert np.allclose(solution.values, entry[0] @ entry[1])

    def test_mixed_shape_batch_still_correct(self, rng):
        solver = Solver(ArraySpec(w=3))
        batch = [
            (rng.normal(size=(6, 6)), rng.normal(size=6)),
            (rng.normal(size=(9, 6)), rng.normal(size=6)),
            (rng.normal(size=(6, 6)), rng.normal(size=6)),
        ]
        batched = solver.solve_batch("matvec", batch)
        for entry, solution in zip(batch, batched):
            assert np.allclose(solution.values, entry[0] @ entry[1])

    def test_interleaved_shapes_still_pair(self, rng):
        """An (A, B, A, B) batch pairs by plan, not by adjacency."""
        solver = Solver(ArraySpec(w=3))
        shape_a, shape_b = (6, 6), (9, 6)
        batch = [
            (rng.normal(size=shape_a), rng.normal(size=6)),
            (rng.normal(size=shape_b), rng.normal(size=6)),
            (rng.normal(size=shape_a), rng.normal(size=6)),
            (rng.normal(size=shape_b), rng.normal(size=6)),
        ]
        batched = solver.solve_batch("matvec", batch)
        assert all(solution.stats.get("paired") for solution in batched)
        # Results come back in the original (interleaved) order ...
        for entry, solution in zip(batch, batched):
            assert np.array_equal(
                solution.values, solver.solve("matvec", *entry).values
            )
        # ... and two overlapped runs replace four sequential ones.
        assert batched[0].measured_steps < solver.plan(
            "matvec", shape=shape_a
        ).executor.model.steps * 1.5

    def test_interleaved_batch_odd_tails_run_plain(self, rng):
        solver = Solver(ArraySpec(w=3))
        batch = [
            (rng.normal(size=(6, 6)), rng.normal(size=6)),
            (rng.normal(size=(9, 6)), rng.normal(size=6)),
            (rng.normal(size=(6, 6)), rng.normal(size=6)),
            (rng.normal(size=(9, 6)), rng.normal(size=6)),
            (rng.normal(size=(6, 6)), rng.normal(size=6)),
        ]
        batched = solver.solve_batch("matvec", batch)
        paired = [bool(solution.stats.get("paired")) for solution in batched]
        # Three 6x6 entries: first two pair, the last runs plain; both
        # 9x6 entries pair.
        assert paired == [True, True, True, True, False]
        for entry, solution in zip(batch, batched):
            assert np.allclose(solution.values, entry[0] @ entry[1])

    def test_batch_other_kind_is_sequential(self, rng):
        solver = Solver(ArraySpec(w=3))
        batch = [
            (rng.normal(size=(4, 5)), rng.normal(size=(5, 3)))
            for _ in range(2)
        ]
        batched = solver.solve_batch("matmul", batch)
        for (a, b), solution in zip(batch, batched):
            assert np.allclose(solution.values, a @ b)
        assert batched[1].from_cache


class TestSolveBatchEdgeCases:
    def test_single_entry_batch_runs_plain_and_matches_solo(self, rng):
        solver = Solver(ArraySpec(w=4))
        a, x = rng.normal(size=(9, 9)), rng.normal(size=9)
        batched = solver.solve_batch("matvec", [(a, x)])
        assert len(batched) == 1
        assert batched[0].stats.get("paired") is None
        solo = solver.solve("matvec", a, x)
        assert np.array_equal(batched[0].values, solo.values)
        assert batched[0].measured_steps == solo.measured_steps

    def test_odd_length_batches_keep_input_order(self, rng):
        solver = Solver(ArraySpec(w=4))
        for length in (1, 3, 5, 7):
            batch = [
                (rng.normal(size=(8, 8)), rng.normal(size=8))
                for _ in range(length)
            ]
            batched = solver.solve_batch("matvec", batch)
            assert len(batched) == length
            # Distinct operands per entry: order mixups cannot cancel out.
            for (a, x), solution in zip(batch, batched):
                assert np.array_equal(
                    solution.values, solver.solve("matvec", a, x).values
                )

    def test_wrong_arity_entry_is_rejected(self, rng):
        solver = Solver(ArraySpec(w=4))
        a, x = rng.normal(size=(6, 6)), rng.normal(size=6)
        with pytest.raises(ValueError, match="operand sets"):
            solver.solve_batch("matvec", [(a, x), (a, x, None, x)])

    def test_mixed_kind_operands_are_rejected_not_solved(self, rng):
        solver = Solver(ArraySpec(w=4))
        matvec_entry = (rng.normal(size=(6, 6)), rng.normal(size=6))
        matmul_entry = (rng.normal(size=(6, 6)), rng.normal(size=(6, 3)))
        with pytest.raises(ShapeError):
            solver.solve_batch("matvec", [matvec_entry, matmul_entry])

    def test_unknown_kind_is_rejected(self, rng):
        solver = Solver(ArraySpec(w=4))
        with pytest.raises(ProblemKindError):
            solver.solve_batch("fourier", [(rng.normal(size=(4, 4)),)])

    def test_empty_batch_returns_empty_list(self):
        assert Solver(ArraySpec(w=4)).solve_batch("matvec", []) == []


class TestSolverLifetime:
    def test_context_manager_resets_on_exit(self, rng):
        with Solver(ArraySpec(w=4)) as solver:
            solver.solve("matvec", rng.normal(size=(8, 8)), rng.normal(size=8))
            assert solver.cache_stats.size == 1
        assert solver.cache_stats.size == 0
        assert solver.cache_stats.misses == 1  # accounting history survives

    def test_reset_preserves_cache_stats_and_recompiles(self, rng):
        solver = Solver(ArraySpec(w=4))
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        first = solver.solve("matvec", a, x)
        solver.reset()
        before = counters.snapshot()
        again = solver.solve("matvec", a, x)
        assert counters.delta(before).plan_builds == 1  # cache was dropped
        assert not again.from_cache
        assert np.array_equal(again.values, first.values)
        stats = solver.cache_stats
        assert stats.misses == 2 and stats.hits == 0  # history preserved

    def test_plan_key_is_public_and_matches_cached_plan(self, rng):
        solver = Solver(ArraySpec(w=4))
        a, x = rng.normal(size=(10, 7)), rng.normal(size=7)
        key = solver.plan_key("matvec", a, x)
        assert key == solver.plan_key("matvec", shape=(10, 7))
        assert key == solver.plan("matvec", shape=(10, 7)).key
        assert hash(key) == hash(solver.plan_key("matvec", a, x))
        overlapped = solver.plan_key("matvec", a, x, overlapped=True)
        assert overlapped != key


class TestPlanCacheThreadSafety:
    def test_hammer_shared_solver(self, rng):
        """Many threads, few cache slots: no torn LRU state, no lost counts."""
        solver = Solver(ArraySpec(w=4), plan_cache_size=2)
        shapes = [(8, 8), (10, 8), (8, 10), (12, 12)]
        problems = {
            shape: (rng.normal(size=shape), rng.normal(size=shape[1]))
            for shape in shapes
        }
        expected = {
            shape: np.asarray(a) @ np.asarray(x)
            for shape, (a, x) in problems.items()
        }
        n_threads, per_thread = 8, 24
        barrier = threading.Barrier(n_threads)
        failures: "list[BaseException]" = []

        def hammer(seed: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(per_thread):
                    shape = shapes[(seed + i) % len(shapes)]
                    a, x = problems[shape]
                    solution = solver.solve("matvec", a, x)
                    assert np.allclose(solution.values, expected[shape])
                    if i % 10 == 0:
                        solver.reset()  # concurrent clear() stays consistent
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        stats = solver.cache_stats
        # Every solve performs exactly one cache lookup; under races a
        # lookup is either a hit or a miss, never lost or double-counted.
        assert stats.hits + stats.misses == n_threads * per_thread
        assert stats.size <= 2

    def test_hammer_cache_object_directly(self):
        cache = PlanCache(maxsize=4)
        sentinel = object()
        keys = [("matvec", (n, n), 4, None) for n in range(8)]
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        failures: "list[BaseException]" = []

        def hammer(seed: int) -> None:
            try:
                barrier.wait(timeout=30)
                for i in range(200):
                    key = keys[(seed * 7 + i) % len(keys)]
                    if cache.get(key) is None:
                        cache.put(key, sentinel)  # type: ignore[arg-type]
                    if i % 50 == 49:
                        cache.clear()
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert failures == []
        stats = cache.stats
        assert stats.hits + stats.misses == n_threads * 200
        assert stats.size <= 4
        assert len(cache) <= 4


class TestDeprecationShims:
    def test_matvec_shim_warns_and_delegates(self, rng):
        a = rng.normal(size=(7, 5))
        x = rng.normal(size=5)
        with pytest.warns(DeprecationWarning):
            legacy = SizeIndependentMatVec(3)
        solution = legacy.solve(a, x)
        assert isinstance(solution, MatVecSolution)
        api_solution = Solver(ArraySpec(w=3)).solve("matvec", a, x)
        assert np.array_equal(solution.y, api_solution.values)
        assert solution.measured_steps == api_solution.measured_steps

    def test_matmul_shim_warns_and_delegates(self, rng):
        a = rng.normal(size=(4, 5))
        b = rng.normal(size=(5, 4))
        with pytest.warns(DeprecationWarning):
            legacy = SizeIndependentMatMul(3)
        solution = legacy.solve(a, b)
        assert isinstance(solution, MatMulSolution)
        api_solution = Solver(ArraySpec(w=3)).solve("matmul", a, b)
        assert np.array_equal(solution.c, api_solution.values)
        assert solution.measured_steps == api_solution.measured_steps

    def test_deprecation_warnings_point_at_the_caller(self):
        """Both shims pass stacklevel=2, so the warning names this file."""
        for shim in (SizeIndependentMatVec, SizeIndependentMatMul):
            with pytest.warns(DeprecationWarning) as captured:
                shim(3)
            assert len(captured) == 1
            assert captured[0].filename == __file__

    def test_shim_reuses_plan_across_solves(self, rng):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SizeIndependentMatVec(3)
        legacy.solve(rng.normal(size=(6, 6)), rng.normal(size=6))
        before = counters.snapshot()
        legacy.solve(rng.normal(size=(6, 6)), rng.normal(size=6))
        assert counters.delta(before).transform_constructions == 0


class TestSolutionProtocol:
    def test_summary_is_uniform_across_kinds(self, rng):
        solver = Solver(ArraySpec(w=3))
        a = rng.normal(size=(6, 6)) + 6 * np.eye(6)
        solutions = [
            solver.solve("matvec", a, rng.normal(size=6)),
            solver.solve("matmul", a, a),
            solver.solve("lu", a),
            solver.solve("triangular", np.tril(a), rng.normal(size=6)),
            solver.solve("gauss_seidel", a, rng.normal(size=6)),
            solver.solve("sparse", a, rng.normal(size=6)),
        ]
        for solution in solutions:
            text = solution.summary()
            assert "steps" in text
            assert "feedback" in text
            assert solution.plan_key is not None

    def test_report_from_solution(self, rng):
        from repro.analysis.report import ExperimentReport

        solver = Solver(ArraySpec(w=3))
        solution = solver.solve("matvec", rng.normal(size=(6, 6)), rng.normal(size=6))
        report = ExperimentReport.from_solution(solution)
        assert report.all_match
        assert len(report.rows) == 2
