"""Tests for the concurrent serving layer (``repro.service``).

Covers the subsystem's acceptance criteria: plan-keyed routing, admission
batching, the three backpressure policies, per-request deadlines,
telemetry aggregation, drain/no-drain shutdown — and the concurrency soak
(8 client threads x 50 requests each through a 4-shard service, results
bit-identical to direct ``Solver.solve`` calls, zero dropped futures
under the ``block`` policy).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.errors import (
    DeadlineExceededError,
    ProblemKindError,
    ServiceClosedError,
    ServiceOverloadedError,
    ShapeError,
)
from repro.instrumentation import counters
from repro.service import (
    AdmissionBatcher,
    BoundedRequestQueue,
    SolveRequest,
    SolverService,
)

W = 4


def _request(kind: str = "matvec", key=None) -> SolveRequest:
    """A minimal queueable request (the queue never inspects operands)."""
    return SolveRequest(
        kind=kind,
        operands=(),
        plan_key=key if key is not None else (kind, (8, 8), W, None),
    )


# --------------------------------------------------------------------------- #
# the bounded queue and its policies (deterministic, no threads)
# --------------------------------------------------------------------------- #
class TestBoundedRequestQueue:
    def test_fifo_and_drain(self):
        queue = BoundedRequestQueue(4)
        requests = [_request() for _ in range(3)]
        for request in requests:
            assert queue.put(request) is None
        assert len(queue) == 3
        assert queue.get(timeout=0) is requests[0]
        assert queue.drain() == requests[1:]
        assert len(queue) == 0

    def test_reject_policy_raises_when_full(self):
        queue = BoundedRequestQueue(2, policy="reject")
        queue.put(_request())
        queue.put(_request())
        with pytest.raises(ServiceOverloadedError):
            queue.put(_request())

    def test_shed_oldest_policy_returns_the_evicted_request(self):
        queue = BoundedRequestQueue(2, policy="shed_oldest")
        oldest = _request()
        queue.put(oldest)
        queue.put(_request())
        newest = _request()
        shed = queue.put(newest)
        assert shed is oldest
        assert len(queue) == 2
        queue.get(timeout=0)
        assert queue.get(timeout=0) is newest

    def test_block_policy_times_out_when_no_consumer(self):
        queue = BoundedRequestQueue(1, policy="block")
        queue.put(_request())
        with pytest.raises(ServiceOverloadedError):
            queue.put(_request(), timeout=0.01)

    def test_block_policy_wakes_when_space_appears(self):
        queue = BoundedRequestQueue(1, policy="block")
        queue.put(_request())
        release = threading.Timer(0.02, lambda: queue.get(timeout=0))
        release.start()
        try:
            assert queue.put(_request(), timeout=2.0) is None
        finally:
            release.join()

    def test_closed_queue_refuses_producers_and_unblocks_consumers(self):
        queue = BoundedRequestQueue(2)
        queue.put(_request())
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.put(_request())
        assert queue.get(timeout=0) is not None  # queued work stays drainable
        assert queue.get(timeout=10.0) is None  # returns at once, no wait

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(0)
        with pytest.raises(ValueError):
            BoundedRequestQueue(4, policy="drop_newest")


# --------------------------------------------------------------------------- #
# admission windows and plan-key grouping
# --------------------------------------------------------------------------- #
class TestAdmissionBatcher:
    def test_window_collects_up_to_max_batch_size(self):
        queue = BoundedRequestQueue(16)
        for _ in range(5):
            queue.put(_request())
        batcher = AdmissionBatcher(queue, max_batch_size=3, max_batch_delay=0.0)
        assert len(batcher.next_window()) == 3
        assert len(batcher.next_window()) == 2

    def test_idle_poll_returns_empty_window(self):
        queue = BoundedRequestQueue(4)
        batcher = AdmissionBatcher(queue, idle_poll=0.01)
        assert batcher.next_window() == []

    def test_group_by_plan_preserves_arrival_order(self):
        key_a = ("matvec", (8, 8), W, None)
        key_b = ("matvec", (12, 12), W, None)
        a1, b1, a2, b2 = (
            _request(key=key_a),
            _request(key=key_b),
            _request(key=key_a),
            _request(key=key_b),
        )
        groups = AdmissionBatcher.group_by_plan([a1, b1, a2, b2])
        assert groups == [[a1, a2], [b1, b2]]

    def test_requests_with_kwargs_become_singleton_groups(self):
        key = ("triangular", (8,), W, None)
        plain = _request(kind="triangular", key=key)
        lowered = SolveRequest(
            kind="triangular", operands=(), plan_key=key, kwargs={"lower": False}
        )
        groups = AdmissionBatcher.group_by_plan([plain, lowered, plain])
        assert groups == [[plain, plain], [lowered]]


# --------------------------------------------------------------------------- #
# the service front door
# --------------------------------------------------------------------------- #
class TestSolverService:
    def test_submit_returns_future_with_solution_protocol(self, rng):
        a = rng.normal(size=(10, 7))
        x = rng.normal(size=7)
        reference = Solver(ArraySpec(W)).solve("matvec", a, x)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            future = service.submit("matvec", a, x)
            solution = future.result(timeout=30)
        assert solution.kind == "matvec"
        assert np.array_equal(solution.values, reference.values)
        assert solution.measured_steps == reference.measured_steps

    def test_routing_is_deterministic_and_key_matches_solver(self, rng):
        service = SolverService(ArraySpec(W), n_shards=4)
        try:
            a = rng.normal(size=(10, 7))
            x = rng.normal(size=7)
            key = service.plan_key("matvec", a, x)
            assert key == Solver(ArraySpec(W)).plan_key("matvec", a, x)
            assert key == service.plan_key("matvec", shape=(10, 7))
            index = service.shard_index(key)
            for _ in range(3):
                assert service.shard_index(key) == index
        finally:
            service.close()

    def test_same_plan_requests_share_one_shard_cache(self, rng):
        with SolverService(ArraySpec(W), n_shards=4) as service:
            batch = [
                (rng.normal(size=(12, 12)), rng.normal(size=12)) for _ in range(10)
            ]
            service.map("matvec", batch)
            stats = service.stats()
        home = service.shard_index(service.plan_key("matvec", shape=(12, 12)))
        assert stats.shards[home].submitted == 10
        assert stats.cache.misses == 1  # one compile for the whole fleet
        assert stats.cache.hits == 9

    def test_map_preserves_input_order_across_shards(self, rng):
        shapes = [(8, 8), (12, 10), (10, 12), (8, 8), (12, 10)]
        batch = [(rng.normal(size=s), rng.normal(size=s[1])) for s in shapes]
        expected = [
            Solver(ArraySpec(W)).solve("matvec", a, x).values for a, x in batch
        ]
        with SolverService(ArraySpec(W), n_shards=3) as service:
            results = service.map("matvec", batch)
        for solution, values in zip(results, expected):
            assert np.array_equal(solution.values, values)

    def test_execution_kwargs_flow_through(self, rng):
        t = np.tril(rng.normal(size=(8, 8))) + 5.0 * np.eye(8)
        b = rng.normal(size=8)
        reference = Solver(ArraySpec(W)).solve("triangular", t.T, b, lower=False)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            solution = service.solve("triangular", t.T, b, lower=False)
        assert np.array_equal(solution.values, reference.values)

    def test_per_request_options_route_and_apply(self, rng):
        a = rng.normal(size=(8, 8))
        x = rng.normal(size=8)
        simulate = ExecutionOptions(backend="simulate")
        with SolverService(ArraySpec(W), n_shards=2) as service:
            solution = service.solve("matvec", a, x, options=simulate)
            assert solution.plan_key[3] == simulate

    def test_submit_validates_synchronously(self, rng):
        with SolverService(ArraySpec(W), n_shards=1) as service:
            with pytest.raises(ProblemKindError):
                service.submit("fourier", rng.normal(size=(4, 4)))
            with pytest.raises(ShapeError):
                service.submit("lu", rng.normal(size=(4, 6)))

    def test_solve_propagates_execution_errors(self, rng):
        with SolverService(ArraySpec(W), n_shards=1) as service:
            future = service.submit(
                "matvec", rng.normal(size=(8, 8)), rng.normal(size=5)
            )
            with pytest.raises(ShapeError):
                future.result(timeout=30)
        stats = service.stats()
        assert stats.failed == 1

    def test_closed_service_rejects_submissions(self, rng):
        service = SolverService(ArraySpec(W), n_shards=1)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosedError):
            service.submit("matvec", rng.normal(size=(8, 8)), rng.normal(size=8))
        service.close()  # idempotent

    def test_close_drains_pending_work(self, rng):
        service = SolverService(
            ArraySpec(W), n_shards=2, max_batch_delay=0.0, queue_depth=256
        )
        batch = [(rng.normal(size=(8, 8)), rng.normal(size=8)) for _ in range(40)]
        futures = [service.submit("matvec", a, x) for a, x in batch]
        service.close(wait=True)
        assert all(future.done() for future in futures)
        assert all(future.exception() is None for future in futures)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            SolverService(ArraySpec(W), n_shards=0)
        with pytest.raises(ValueError):
            SolverService(ArraySpec(W), backpressure="panic")


# --------------------------------------------------------------------------- #
# overload behaviour with a deliberately stalled worker
# --------------------------------------------------------------------------- #
def _stalled_service(monkeypatch, policy: str, queue_depth: int):
    """A 1-shard service whose worker blocks in solve until ``gate`` is set."""
    service = SolverService(
        ArraySpec(W),
        n_shards=1,
        queue_depth=queue_depth,
        backpressure=policy,
        max_batch_size=1,
        max_batch_delay=0.0,
        idle_poll=0.01,
    )
    gate = threading.Event()
    shard_solver = service.shards[0].solver
    original = shard_solver.solve

    def gated_solve(*args, **kwargs):
        gate.wait(timeout=30)
        return original(*args, **kwargs)

    monkeypatch.setattr(shard_solver, "solve", gated_solve)
    return service, gate


def _wait_until(predicate, timeout: float = 5.0) -> None:
    cutoff = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > cutoff:
            raise AssertionError("condition not reached in time")
        time.sleep(0.002)


class TestBackpressurePolicies:
    def test_reject_policy_raises_at_the_front_door(self, rng, monkeypatch):
        service, gate = _stalled_service(monkeypatch, "reject", queue_depth=2)
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        try:
            first = service.submit("matvec", a, x)
            # The worker holds `first`; now fill the queue behind it.
            _wait_until(lambda: len(service.shards[0].queue) == 0)
            queued = [service.submit("matvec", a, x) for _ in range(2)]
            with pytest.raises(ServiceOverloadedError):
                service.submit("matvec", a, x)
            gate.set()
            for future in [first, *queued]:
                assert future.result(timeout=30) is not None
        finally:
            gate.set()
            service.close()
        assert service.stats().rejected == 1

    def test_shed_oldest_policy_fails_the_displaced_future(self, rng, monkeypatch):
        service, gate = _stalled_service(monkeypatch, "shed_oldest", queue_depth=1)
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        try:
            first = service.submit("matvec", a, x)
            _wait_until(lambda: len(service.shards[0].queue) == 0)
            old = service.submit("matvec", a, x)
            new = service.submit("matvec", a, x)  # displaces `old`
            with pytest.raises(ServiceOverloadedError):
                old.result(timeout=30)
            gate.set()
            assert new.result(timeout=30) is not None
            assert first.result(timeout=30) is not None
        finally:
            gate.set()
            service.close()
        assert service.stats().shed == 1

    def test_deadline_expires_while_queued(self, rng, monkeypatch):
        service, gate = _stalled_service(monkeypatch, "block", queue_depth=8)
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        try:
            unhurried = service.submit("matvec", a, x)
            _wait_until(lambda: len(service.shards[0].queue) == 0)
            hurried = service.submit("matvec", a, x, timeout=0.005)
            time.sleep(0.03)  # let the deadline lapse while it sits queued
            gate.set()
            with pytest.raises(DeadlineExceededError):
                hurried.result(timeout=30)
            assert unhurried.result(timeout=30) is not None
        finally:
            gate.set()
            service.close()
        assert service.stats().expired == 1

    def test_bad_request_in_a_flush_group_does_not_poison_neighbours(
        self, rng, monkeypatch
    ):
        # A wrong-length x shares the plan key of a valid request (keys
        # only see the matrix shape), so both land in one flush group;
        # the failure must stay with the malformed request.
        service, gate = _stalled_service(monkeypatch, "block", queue_depth=8)
        # Re-enable grouping: the stalled helper uses singleton windows.
        batcher = service.shards[0]._batcher
        monkeypatch.setattr(batcher, "_max_batch_size", 8)
        a = rng.normal(size=(8, 8))
        good_x, bad_x = rng.normal(size=8), rng.normal(size=5)
        try:
            first = service.submit("matvec", a, good_x)
            _wait_until(lambda: len(service.shards[0].queue) == 0)
            good = service.submit("matvec", a, good_x)
            bad = service.submit("matvec", a, bad_x)
            gate.set()
            assert np.array_equal(
                good.result(timeout=30).values, first.result(timeout=30).values
            )
            with pytest.raises(ShapeError):
                bad.result(timeout=30)
        finally:
            gate.set()
            service.close()
        stats = service.stats()
        assert stats.completed == 2 and stats.failed == 1

    def test_close_without_drain_fails_pending_futures(self, rng, monkeypatch):
        service, gate = _stalled_service(monkeypatch, "block", queue_depth=8)
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        running = service.submit("matvec", a, x)
        _wait_until(lambda: len(service.shards[0].queue) == 0)
        pending = [service.submit("matvec", a, x) for _ in range(3)]
        gate.set()
        service.close(wait=False)
        assert running.result(timeout=30) is not None
        for future in pending:
            with pytest.raises(ServiceClosedError):
                future.result(timeout=30)


# --------------------------------------------------------------------------- #
# telemetry
# --------------------------------------------------------------------------- #
class TestTelemetry:
    def test_stats_account_for_every_request(self, rng):
        before = counters.snapshot()
        with SolverService(ArraySpec(W), n_shards=2, max_batch_delay=0.001) as service:
            matvec_batch = [
                (rng.normal(size=(12, 12)), rng.normal(size=12)) for _ in range(12)
            ]
            service.map("matvec", matvec_batch)
            service.solve("matmul", rng.normal(size=(6, 6)), rng.normal(size=(6, 6)))
            stats = service.stats()
        delta = counters.delta(before)

        assert stats.submitted == 13
        assert stats.completed == 13
        assert stats.failed == stats.rejected == stats.shed == stats.expired == 0
        assert stats.requests_by_kind == {"matvec": 12, "matmul": 1}
        assert stats.queue_depth == 0
        assert sum(
            size * count for size, count in stats.batch_size_histogram.items()
        ) == 13
        assert stats.batches >= 2  # two plans can never share a flush
        assert stats.latency_p50 is not None
        assert stats.latency_p95 >= stats.latency_p50
        assert stats.cache.misses == 2  # one compile per distinct plan
        assert stats.cache.hits == 11
        assert delta.service_requests == 13
        assert delta.service_batches == stats.batches

    def test_batching_actually_groups_requests(self, rng):
        # A stuffed queue + a non-zero admission window => multi-request
        # flushes, visible in the histogram and the mean batch size.
        service = SolverService(
            ArraySpec(W), n_shards=1, max_batch_size=8, max_batch_delay=0.05,
            queue_depth=128,
        )
        try:
            a = rng.normal(size=(12, 12))
            x = rng.normal(size=12)
            service.solve("matvec", a, x)  # compile the plan first
            futures = [service.submit("matvec", a, x) for _ in range(24)]
            for future in futures:
                future.result(timeout=30)
            stats = service.stats()
        finally:
            service.close()
        assert stats.mean_batch_size > 1.0
        assert max(stats.batch_size_histogram) > 1

    def test_describe_mentions_the_load_bearing_numbers(self, rng):
        with SolverService(ArraySpec(W), n_shards=2) as service:
            service.solve("matvec", rng.normal(size=(8, 8)), rng.normal(size=8))
            text = service.stats().describe()
        assert "1 submitted" in text
        assert "plan cache" in text
        assert "shard 0" in text and "shard 1" in text


# --------------------------------------------------------------------------- #
# the concurrency soak (acceptance criterion)
# --------------------------------------------------------------------------- #
class TestConcurrencySoak:
    N_CLIENTS = 8
    REQUESTS_PER_CLIENT = 50

    def test_soak_bit_identical_zero_drops(self, rng):
        shapes = [(8, 8), (12, 10), (10, 12)]
        problems = [
            ("matvec", (rng.normal(size=shape), rng.normal(size=shape[1])))
            for shape in shapes
        ]
        problems.append(
            ("matmul", (rng.normal(size=(6, 6)), rng.normal(size=(6, 6))))
        )
        reference = Solver(ArraySpec(W))
        expected = [
            reference.solve(kind, *operands).values for kind, operands in problems
        ]

        service = SolverService(
            ArraySpec(W),
            n_shards=4,
            backpressure="block",
            queue_depth=16,  # small on purpose: clients must block and recover
            max_batch_delay=0.001,
        )
        futures: "list[list[Future]]" = [[] for _ in range(self.N_CLIENTS)]
        errors: "list[BaseException]" = []

        def client(client_id: int) -> None:
            try:
                for i in range(self.REQUESTS_PER_CLIENT):
                    kind, operands = problems[(client_id + i) % len(problems)]
                    futures[client_id].append(service.submit(kind, *operands))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(client_id,))
            for client_id in range(self.N_CLIENTS)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert errors == []

            total = 0
            for client_id, client_futures in enumerate(futures):
                assert len(client_futures) == self.REQUESTS_PER_CLIENT
                for i, future in enumerate(client_futures):
                    solution = future.result(timeout=60)  # no dropped futures
                    index = (client_id + i) % len(problems)
                    assert np.array_equal(solution.values, expected[index])
                    total += 1
            assert total == self.N_CLIENTS * self.REQUESTS_PER_CLIENT
        finally:
            service.close()

        stats = service.stats()
        assert stats.submitted == total
        assert stats.completed == total
        assert stats.failed == stats.rejected == stats.shed == stats.expired == 0
        # Routing kept every plan on one home shard: one miss per distinct
        # plan fleet-wide, everything else warm.
        assert stats.cache.misses == len(problems)


# --------------------------------------------------------------------------- #
# QoS: priority classes, shed victim selection, rate limits (ISSUE 9)
# --------------------------------------------------------------------------- #
class TestQosPrimitives:
    def test_resolve_priority_names_and_ints(self):
        from repro.service import (
            PRIORITY_HIGH,
            PRIORITY_LOW,
            PRIORITY_NORMAL,
            priority_name,
            resolve_priority,
        )

        assert resolve_priority("high") == PRIORITY_HIGH
        assert resolve_priority("NORMAL") == PRIORITY_NORMAL
        assert resolve_priority("Low") == PRIORITY_LOW
        assert resolve_priority(2) == PRIORITY_HIGH
        assert priority_name(PRIORITY_LOW) == "low"
        assert priority_name(7) == "p7"
        with pytest.raises(ValueError):
            resolve_priority("urgent")
        with pytest.raises(TypeError):
            resolve_priority(True)  # bool is not a priority level
        with pytest.raises(TypeError):
            resolve_priority(1.5)

    def test_token_bucket_with_patched_clock(self):
        from repro.service import RateLimit, TokenBucket

        now = [1000.0]
        bucket = TokenBucket(RateLimit(rate=1.0, burst=2), clock=lambda: now[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire(), "burst of 2 must be exhausted"
        now[0] += 1.0  # exactly one token refills at rate=1/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        now[0] += 100.0  # refill saturates at the burst capacity
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_rate_limit_validation(self):
        from repro.service import RateLimit

        with pytest.raises(ValueError):
            RateLimit(rate=0.0)
        with pytest.raises(ValueError):
            RateLimit(rate=1.0, burst=0.0)
        assert RateLimit(rate=3.0).capacity == 3.0
        assert RateLimit(rate=3.0, burst=10.0).capacity == 10.0

    def test_client_rate_limiter_scopes_and_counts(self):
        from repro.service import ClientRateLimiter, RateLimit

        now = [0.0]
        limiter = ClientRateLimiter(
            limits={"noisy": RateLimit(rate=1.0, burst=1)},
            default=RateLimit(rate=1.0, burst=2),
            clock=lambda: now[0],
        )
        # Anonymous requests are never limited.
        assert all(limiter.admit(None) for _ in range(10))
        assert limiter.admit("noisy")
        assert not limiter.admit("noisy")
        # Unknown clients get the default limit, each with its own bucket.
        assert limiter.admit("other") and limiter.admit("other")
        assert not limiter.admit("other")
        assert limiter.admit("third")
        rejections = limiter.rejections()
        assert rejections["noisy"] == 1 and rejections["other"] == 1


class TestShedVictimSelection:
    """Deterministic shed ordering on the bare queue (no threads)."""

    @staticmethod
    def _req(priority: int, deadline=None, tag: str = "") -> SolveRequest:
        return SolveRequest(
            kind="matvec",
            operands=(tag,),
            plan_key=("matvec", (8, 8), W, None),
            priority=priority,
            deadline=deadline,
        )

    def test_lowest_priority_class_sheds_first(self):
        from repro.service import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL

        queue = BoundedRequestQueue(2, policy="shed_oldest")
        low = self._req(PRIORITY_LOW)
        high = self._req(PRIORITY_HIGH)
        queue.put(low)
        queue.put(high)
        incoming = self._req(PRIORITY_NORMAL)
        assert queue.put(incoming) is low
        assert queue.drain(10) == [high, incoming]

    def test_nearest_deadline_sheds_first_within_a_class(self):
        from repro.service import PRIORITY_LOW

        queue = BoundedRequestQueue(2, policy="shed_oldest")
        lax = self._req(PRIORITY_LOW, deadline=1e9 + 50.0)
        urgent = self._req(PRIORITY_LOW, deadline=1e9 + 1.0)
        queue.put(lax)
        queue.put(urgent)
        assert queue.put(self._req(PRIORITY_LOW, deadline=1e9 + 20.0)) is urgent

    def test_no_deadline_outranks_any_deadline(self):
        from repro.service import PRIORITY_LOW

        queue = BoundedRequestQueue(2, policy="shed_oldest")
        unhurried = self._req(PRIORITY_LOW, deadline=None)
        hurried = self._req(PRIORITY_LOW, deadline=1e12)
        queue.put(unhurried)
        queue.put(hurried)
        assert queue.put(self._req(PRIORITY_LOW)) is hurried

    def test_incoming_sheds_itself_when_weakest(self):
        from repro.service import PRIORITY_HIGH, PRIORITY_LOW

        queue = BoundedRequestQueue(2, policy="shed_oldest")
        queue.put(self._req(PRIORITY_HIGH))
        queue.put(self._req(PRIORITY_HIGH))
        incoming = self._req(PRIORITY_LOW)
        assert queue.put(incoming) is incoming
        assert len(queue) == 2  # the queue kept its stronger residents

    def test_equal_class_fifo_tie_break_with_incoming_newest(self):
        """Legacy shed-oldest behaviour is the all-ties special case."""
        queue = BoundedRequestQueue(2, policy="shed_oldest")
        oldest = self._req(1, tag="oldest")
        queue.put(oldest)
        queue.put(self._req(1, tag="middle"))
        assert queue.put(self._req(1, tag="incoming")) is oldest

    def test_handoff_lane_is_shed_exempt(self):
        from repro.service import PRIORITY_HIGH, PRIORITY_LOW

        queue = BoundedRequestQueue(1, policy="shed_oldest")
        segment = self._req(PRIORITY_LOW, tag="segment")
        queue.put_handoff(segment)
        resident = self._req(PRIORITY_LOW, tag="resident")
        queue.put(resident)
        # The handoff lane's low-priority segment is never a candidate:
        # the admission-lane resident is shed instead.
        assert queue.put(self._req(PRIORITY_HIGH)) is resident
        assert queue.get(timeout=1.0) is segment  # lane drains first, intact


class TestServiceQos:
    def test_rate_limited_client_gets_typed_rejection(self, rng):
        from repro.errors import RateLimitedError
        from repro.service import RateLimit

        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        service = SolverService(
            ArraySpec(W),
            n_shards=1,
            rate_limits={"noisy": RateLimit(rate=0.001, burst=2)},
        )
        try:
            ok = [service.submit("matvec", a, x, client_id="noisy") for _ in range(2)]
            with pytest.raises(RateLimitedError, match="noisy"):
                service.submit("matvec", a, x, client_id="noisy")
            # Anonymous and other clients are unaffected (no default limit).
            service.submit("matvec", a, x).result(timeout=30)
            service.submit("matvec", a, x, client_id="quiet").result(timeout=30)
            for future in ok:
                future.result(timeout=30)
        finally:
            service.close()
        stats = service.stats()
        assert stats.rate_limited == 1
        assert stats.completed == 4

    def test_default_rate_limit_applies_to_every_client(self, rng):
        from repro.errors import RateLimitedError
        from repro.service import RateLimit

        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        service = SolverService(
            ArraySpec(W),
            n_shards=1,
            default_rate_limit=RateLimit(rate=0.001, burst=1),
        )
        try:
            service.submit("matvec", a, x, client_id="anyone").result(timeout=30)
            with pytest.raises(RateLimitedError):
                for _ in range(10):
                    service.submit("matvec", a, x, client_id="anyone")
        finally:
            service.close()

    def test_rate_limited_graph_submission(self, rng):
        from repro.errors import RateLimitedError
        from repro.graph import Graph, MatVec
        from repro.service import RateLimit

        a = rng.normal(size=(8, 8))
        graph = Graph(MatVec(a, rng.normal(size=8), name="out"))
        service = SolverService(
            ArraySpec(W),
            n_shards=2,
            rate_limits={"bulk": RateLimit(rate=0.001, burst=1)},
        )
        try:
            service.submit_graph(graph, client_id="bulk").result(timeout=30)
            with pytest.raises(RateLimitedError):
                service.submit_graph(graph, client_id="bulk")
        finally:
            service.close()
        assert service.stats().rate_limited == 1

    def test_invalid_priority_rejected_synchronously(self, rng):
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        with SolverService(ArraySpec(W), n_shards=1) as service:
            with pytest.raises(ValueError):
                service.submit("matvec", a, x, priority="urgent")

    def test_priority_shed_prefers_low_and_labels_telemetry(
        self, rng, monkeypatch
    ):
        service, gate = _stalled_service(monkeypatch, "shed_oldest", queue_depth=2)
        a, x = rng.normal(size=(8, 8)), rng.normal(size=8)
        try:
            first = service.submit("matvec", a, x, priority="high")
            _wait_until(lambda: len(service.shards[0].queue) == 0)
            low = service.submit("matvec", a, x, priority="low")
            normal = service.submit("matvec", a, x)  # queue now full
            high = service.submit("matvec", a, x, priority="high")
            with pytest.raises(ServiceOverloadedError, match="class low"):
                low.result(timeout=30)
            gate.set()
            for future in (first, normal, high):
                assert future.result(timeout=30) is not None
        finally:
            gate.set()
            service.close()
        stats = service.stats()
        assert stats.shed == 1
        assert stats.shed_by_priority == {"low": 1}


class TestBatcherClock:
    """The admission window runs on an injectable *monotonic* clock."""

    def test_injected_clock_governs_the_window_cutoff(self):
        # A clock that leaps 10s per reading expires the 5s window
        # between the first admission and the cutoff check — the whole
        # window must assemble instantly in wall time via drain().
        ticks = iter(range(0, 10_000, 10))
        queue = BoundedRequestQueue(8)
        for _ in range(3):
            queue.put(_request())
        batcher = AdmissionBatcher(
            queue,
            max_batch_size=8,
            max_batch_delay=5.0,
            idle_poll=0.01,
            clock=lambda: float(next(ticks)),
        )
        start = time.monotonic()
        window = batcher.next_window()
        assert len(window) == 3
        assert time.monotonic() - start < 1.0, (
            "a 5s max_batch_delay leaked into wall time despite the "
            "injected clock having expired the window"
        )

    def test_frozen_clock_still_fills_by_size(self):
        # With the injected clock stopped, the size cap (not wall time)
        # must close the window: no deadline math may fall through to a
        # different time source.
        queue = BoundedRequestQueue(8)
        for _ in range(4):
            queue.put(_request())
        batcher = AdmissionBatcher(
            queue,
            max_batch_size=4,
            max_batch_delay=30.0,
            idle_poll=0.01,
            clock=lambda: 123.456,
        )
        start = time.monotonic()
        assert len(batcher.next_window()) == 4
        assert time.monotonic() - start < 1.0

    def test_wall_clock_jumps_cannot_stretch_the_window(self, monkeypatch):
        # Regression for the monotonic requirement: a wall-clock step
        # (NTP, DST) must not affect the default batcher, which runs on
        # time.monotonic.
        queue = BoundedRequestQueue(8)
        queue.put(_request())
        monkeypatch.setattr(time, "time", lambda: -1e12)
        batcher = AdmissionBatcher(
            queue, max_batch_size=4, max_batch_delay=0.005, idle_poll=0.01
        )
        start = time.monotonic()
        assert len(batcher.next_window()) == 1
        assert time.monotonic() - start < 1.0
