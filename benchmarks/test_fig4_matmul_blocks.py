"""F4 — Fig. 4: block structure of the transformed matrix-matrix problem.

The paper draws the operand bands for the ``n_bar=2, p_bar=2, m_bar=3``
case.  This benchmark rebuilds them and checks the structural facts the
figure conveys: the dimensions, the copy structure of ``A~``, the strip
structure of ``B~``, the appended ``U'``/``L'`` tails, and the consistency
of the inner (contracted) indices.
"""

from __future__ import annotations


from repro.analysis.figures import render_fig4_matmul_blocks
from repro.analysis.report import ExperimentReport
from repro.core.operands import MatMulOperands


def test_fig4_operand_structure(benchmark, rng, show_report):
    n_bar, p_bar, m_bar, w = 2, 2, 3, 3
    a = rng.uniform(-1.0, 1.0, size=(n_bar * w, p_bar * w))
    b = rng.uniform(-1.0, 1.0, size=(p_bar * w, m_bar * w))

    operands = benchmark(MatMulOperands, a, b, w)

    report = ExperimentReport("F4", "Fig. 4 — transformed operands, n_bar=2 p_bar=2 m_bar=3")
    report.add("full band blocks (m n p)", m_bar * n_bar * p_bar, operands.full_block_count)
    report.add("operand dimension", m_bar * n_bar * p_bar * w + w - 1, operands.dimension)
    report.add("A~ bandwidth", w, operands.a_operand.band.bandwidth)
    report.add("B~ bandwidth", w, operands.b_operand.band.bandwidth)
    report.add(
        "A~ band positions filled",
        operands.a_operand.band.band_positions(),
        len(operands.a_operand.provenance),
    )
    report.add(
        "B~ band positions filled",
        operands.b_operand.band.band_positions(),
        len(operands.b_operand.provenance),
    )
    assert report.all_match
    assert operands.inner_origins_consistent()
    show_report(report)

    text = render_fig4_matmul_blocks(n_bar, p_bar, m_bar, w)
    assert "U^A_0,0" in text and "U^A_1,1" in text
    assert "tail" in text


def test_fig4_product_coverage(benchmark, rng, show_report):
    """Every product of the padded problem is computed exactly once."""
    a = rng.uniform(-1.0, 1.0, size=(6, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 9))
    operands = MatMulOperands(a, b, 3)

    covered, duplicated = benchmark(operands.verify_product_coverage)

    report = ExperimentReport("F4b", "product coverage of the band product")
    report.add("distinct products covered", 2 * 2 * 3 * 27, covered)
    assert duplicated <= (3 - 1) ** 3
    assert report.all_match
    show_report(report)
