"""X1 — the motivating comparison: DBT against the strategies it replaces.

Section 1 motivates the transformation by the throughput loss fixed-size
contraflow arrays suffer on dense operands and by the cost of computing
partial results outside the array.  This benchmark runs the same dense
problems through

* the DBT pipeline (this paper),
* the PRT-per-block partitioning with host accumulation (Hwang-Cheng
  style, reference /2/), and
* the naive dense-block-as-full-band strategy on a ``2w - 1`` array,

and compares array size, utilization and external additions.  The paper's
qualitative ranking (DBT needs the smallest array, reaches the highest
utilization, and performs no arithmetic outside the array) must hold for
every problem in the sweep.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.baselines.block_partition import BlockPartitionedMatVec
from repro.baselines.naive_band import NaiveBlockMatMul, NaiveBlockMatVec
from repro.core.matmul import SizeIndependentMatMul
from repro.core.matvec import SizeIndependentMatVec


def test_x1_matvec_strategies(benchmark, rng, show_report):
    w = 3
    sizes = [(6, 6), (9, 12), (15, 15)]

    def run():
        rows = []
        for n, m in sizes:
            matrix = rng.uniform(-1.0, 1.0, size=(n, m))
            x = rng.uniform(-1.0, 1.0, size=m)
            b = rng.uniform(-1.0, 1.0, size=n)
            dbt = SizeIndependentMatVec(w).solve(matrix, x, b)
            partitioned = BlockPartitionedMatVec(w).solve(matrix, x, b)
            naive = NaiveBlockMatVec(w).solve(matrix, x, b)
            reference = matrix @ x + b
            assert np.allclose(dbt.y, reference)
            assert np.allclose(partitioned.result, reference)
            assert np.allclose(naive.result, reference)
            rows.append((n, m, dbt, partitioned, naive))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport(
        "X1", "matrix-vector strategies on a fixed-size array (w=3)"
    )
    for n, m, dbt, partitioned, naive in rows:
        label = f"{n}x{m}"
        report.add(f"[{label}] DBT cells", w, dbt.w)
        report.add(f"[{label}] naive cells", 2 * w - 1, naive.processing_elements)
        report.add(f"[{label}] DBT external adds", 0, 0)
        report.add(
            f"[{label}] partitioned external adds",
            partitioned.external_additions,
            partitioned.external_additions,
            "host accumulation the paper avoids",
        )
        assert dbt.measured_utilization > partitioned.utilization > 0
        assert dbt.measured_utilization > naive.utilization > 0
    assert report.all_match
    show_report(report)

    # Utilization ranking summary for the largest problem.
    _n, _m, dbt, partitioned, naive = rows[-1]
    ranking = ExperimentReport("X1b", "utilization ranking, 15x15 problem")
    ranking.add("DBT (paper)", dbt.predicted_utilization, dbt.measured_utilization)
    ranking.add("block partitioned", partitioned.utilization, partitioned.utilization)
    ranking.add("naive full-band blocks", naive.utilization, naive.utilization)
    show_report(ranking)


def test_x1_matmul_strategies(benchmark, rng, show_report):
    w = 3
    a = rng.uniform(-1.0, 1.0, size=(6, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 6))
    e = rng.uniform(-1.0, 1.0, size=(6, 6))

    def run():
        dbt = SizeIndependentMatMul(w).solve(a, b, e)
        naive = NaiveBlockMatMul(w).solve(a, b, e)
        reference = a @ b + e
        assert np.allclose(dbt.c, reference)
        assert np.allclose(naive.result, reference)
        return dbt, naive

    dbt, naive = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport("X1c", "matrix-matrix strategies (w=3, 6x6x6)")
    report.add("DBT processing elements", w * w, dbt.model.processing_elements)
    report.add("naive processing elements", (2 * w - 1) ** 2, naive.processing_elements)
    report.add("DBT external additions", 0, 0)
    report.add(
        "naive external additions",
        naive.external_additions,
        naive.external_additions,
        "host accumulation the paper avoids",
    )
    assert dbt.measured_utilization > 2.0 * naive.utilization
    assert report.all_match
    show_report(report)
