"""T8 — the transformed band is completely filled and every computation
happens inside the array.

Section 2: "Maximum efficiency is obtained because every array operation
cycle is useful, due to the fact that the transformed matrix band is filled
(no empty position) with elements from the original matrix", and "By using
this type of feedback, final results are obtained without need of any
calculation external to the array processor."

The benchmark checks both halves of the claim on randomized problems:

* structurally — every in-band position of ``A~`` (and of the matrix-matrix
  operand bands) maps to exactly one element of the padded original;
* operationally — the recovered results are bit-for-bit the values carried
  out of the simulated arrays, with zero host-side arithmetic, and they
  match the dense reference.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.dbt import DBTByRowsTransform
from repro.core.matmul import SizeIndependentMatMul
from repro.core.matvec import SizeIndependentMatVec
from repro.core.operands import MatMulOperands


def test_t8_matvec_band_fill_and_in_array_computation(benchmark, rng, show_report):
    shapes = [(6, 9), (7, 11), (12, 5), (10, 10)]
    w = 3

    def run():
        results = []
        for n, m in shapes:
            matrix = rng.uniform(-1.0, 1.0, size=(n, m))
            x = rng.uniform(-1.0, 1.0, size=m)
            b = rng.uniform(-1.0, 1.0, size=n)
            transform = DBTByRowsTransform(matrix, w)
            solution = SizeIndependentMatVec(w).solve(matrix, x, b)
            results.append((n, m, matrix, x, b, transform, solution))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport("T8", "band fill and in-array computation (mat-vec)")
    for n, m, matrix, x, b, transform, solution in results:
        filled, total = transform.band_fill_report()
        report.add(f"band positions filled ({n}x{m})", total, filled)
        assert np.allclose(solution.y, matrix @ x + b)
        # Every recovered element is literally one of the array's outputs.
        outputs = {round(item.value, 12) for item in solution.run.output_stream}
        assert all(round(value, 12) in outputs for value in solution.y)
    assert report.all_match
    show_report(report)


def test_t8_matmul_band_fill_and_in_array_accumulation(benchmark, rng, show_report):
    w = 3
    a = rng.uniform(-1.0, 1.0, size=(6, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 9))
    e = rng.uniform(-1.0, 1.0, size=(6, 9))

    def run():
        operands = MatMulOperands(a, b, w)
        solution = SizeIndependentMatMul(w).solve(a, b, e)
        return operands, solution

    operands, solution = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport("T8b", "band fill and in-array accumulation (mat-mat)")
    report.add(
        "A~ positions filled",
        operands.a_operand.band.band_positions(),
        len(operands.a_operand.provenance),
    )
    report.add(
        "B~ positions filled",
        operands.b_operand.band.band_positions(),
        len(operands.b_operand.provenance),
    )
    # All partial sums are combined through the feedback plan, never by the
    # host: the number of fed-back values equals the number of non-head
    # chain positions.
    expected_feedback = sum(
        chain.length - 1 for chain in solution.placement.chains.values()
    )
    report.add("values accumulated via feedback", expected_feedback, len(solution.feedback_delays))
    assert np.allclose(solution.c, a @ b + e)
    assert report.all_match
    show_report(report)
