"""Plan-cache speedup on repeated same-shape solves.

The api redesign's performance claim: because the DBT transformation
depends only on problem shape and array size ``w``, a warm
:class:`~repro.api.plan.ExecutionPlan` lets repeated same-shape solves —
the hot path of a serving workload — skip all transform construction and
only stream operand values.  This benchmark demonstrates the claim:

* a *cold* solve (plan compilation + execution) is measurably slower than
  a *warm* solve (execution only) of the same problem,
* the warm solve constructs zero transforms (instrumentation counter),
* cold and warm results are bit-identical.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import ArraySpec, Solver
from repro.instrumentation import counters


def _best_of(callable_, repeats: int = 3) -> float:
    """Smallest wall-clock time of ``repeats`` calls (noise suppression)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


class TestPlanCacheSpeedup:
    def test_warm_solve_is_faster_and_identical(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        n, m, w = 24, 24, 4
        a = rng.normal(size=(n, m))
        x = rng.normal(size=m)
        b = rng.normal(size=n)

        # Cold: a fresh solver must compile the plan inside solve().
        cold_solver = Solver(ArraySpec(w=w))
        cold_start = time.perf_counter()
        cold = cold_solver.solve("matvec", a, x, b)
        cold_time = time.perf_counter() - cold_start
        assert not cold.from_cache

        # Warm: the same solver, same shape — values only.
        warm_results = []
        before = counters.snapshot()
        warm_time = _best_of(
            lambda: warm_results.append(cold_solver.solve("matvec", a, x, b))
        )
        delta = counters.delta(before)

        assert all(solution.from_cache for solution in warm_results)
        assert delta.transform_constructions == 0
        assert delta.plan_builds == 0
        for solution in warm_results:
            assert np.array_equal(solution.values, cold.values)
        assert warm_time < cold_time, (
            f"warm solve ({warm_time:.6f}s) not faster than cold ({cold_time:.6f}s)"
        )

        report = ExperimentReport(
            experiment="plan cache: cold vs warm matvec solve",
            description=f"n=m={n}, w={w}; warm = best of 3",
        )
        report.add(
            "warm faster",
            1,
            int(warm_time < cold_time),
            note=(
                f"cold {cold_time * 1e3:.2f} ms, warm {warm_time * 1e3:.2f} ms, "
                f"speedup {cold_time / warm_time:.2f}x"
            ),
        )
        report.add(
            "transforms built during warm solves",
            0,
            delta.transform_constructions,
            note="plan reuse streams values only",
        )
        show_report(report)

    def test_warm_matmul_solve_skips_operand_construction(self, rng):
        w = 3
        a = rng.normal(size=(6, 9))
        b = rng.normal(size=(9, 6))
        solver = Solver(ArraySpec(w=w))
        cold = solver.solve("matmul", a, b)

        before = counters.snapshot()
        warm = solver.solve("matmul", a, b)
        delta = counters.delta(before)
        assert warm.from_cache
        assert delta.transform_constructions == 0
        assert np.array_equal(warm.values, cold.values)

    def test_batch_reuses_one_plan(self, rng):
        solver = Solver(ArraySpec(w=4))
        batch = [
            (rng.normal(size=(12, 12)), rng.normal(size=12)) for _ in range(6)
        ]
        solver.solve_batch("matvec", batch)  # first entry compiles the plan
        stats = solver.cache_stats
        assert stats.misses == 1
        assert stats.hits == len(batch) - 1

    @pytest.mark.parametrize("repeat", [8])
    def test_shim_amortizes_transform_construction(self, rng, repeat):
        """The legacy shim inherits the plan reuse for same-shape loops."""
        import warnings

        from repro.core.matvec import SizeIndependentMatVec

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = SizeIndependentMatVec(4)
        legacy.solve(rng.normal(size=(12, 12)), rng.normal(size=12))
        before = counters.snapshot()
        for _ in range(repeat):
            legacy.solve(rng.normal(size=(12, 12)), rng.normal(size=12))
        assert counters.delta(before).transform_constructions == 0
