"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a figure or a
closed-form claim), checks the paper-vs-measured comparison with hard
assertions, and reports it as an :class:`repro.analysis.report.ExperimentReport`
table on stdout (run ``pytest benchmarks/ --benchmark-only -s`` to see the
tables).
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20240614)


@pytest.fixture
def show_report(capsys):
    """Print an ExperimentReport table without it being swallowed silently."""

    def _show(report) -> None:
        with capsys.disabled():
            print()
            print(report.format_table())

    return _show
