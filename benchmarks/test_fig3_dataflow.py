"""F3 — Fig. 3: input/output data flow of the linear array, 39 cycles.

The paper tabulates the data entering and leaving the array for the
``n=6, m=9, w=3`` problem over its 39 computation steps.  This benchmark
re-runs that exact problem on the cycle-accurate simulator with trace
recording and checks the quantities the figure shows: the step count, the
20-element ``x`` stream (x_0..x_8 twice plus x_0, x_1), the alternation of
``b`` elements and fed-back partial results on the ``y`` input, and the
partial/final structure of the ``y`` output.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.matvec import SizeIndependentMatVec


def test_fig3_dataflow_table(benchmark, rng, show_report):
    n, m, w = 6, 9, 3
    matrix = rng.uniform(-1.0, 1.0, size=(n, m))
    x = rng.uniform(-1.0, 1.0, size=m)
    b = rng.uniform(-1.0, 1.0, size=n)

    solver = SizeIndependentMatVec(w, record_trace=True)
    solution = benchmark(solver.solve, matrix, x, b)
    assert np.allclose(solution.y, matrix @ x + b)

    trace = solution.trace
    x_stream = trace.rows["x in"]
    y_in_stream = trace.rows["y/b in"]
    y_out_stream = trace.rows["y out"]

    # Labels of the x stream: x0..x8, x0..x8, x0, x1 — exactly as printed in
    # the figure.
    x_labels = trace.row_labels("x in")
    expected_x = [f"x{j}" for j in range(9)] * 2 + ["x0", "x1"]
    assert x_labels == expected_x

    # The y-input stream alternates external b blocks and fed-back partials:
    # b0 b1 b2, then partial passes of y0..y2, then b3 b4 b5, ...
    y_in_labels = trace.row_labels("y/b in")
    assert y_in_labels[:3] == ["b0", "b1", "b2"]
    assert y_in_labels[3:6] == ["y0^0", "y1^0", "y2^0"]
    assert y_in_labels[9:12] == ["b3", "b4", "b5"]

    # The output stream produces two partial passes and one final value per
    # original element; the final values are y0..y5.
    finals = [item for item in y_out_stream if len(item.tag) == 2]
    assert [item.tag[1] for item in finals] == [0, 1, 2, 3, 4, 5]

    report = ExperimentReport("F3", "Fig. 3 — data flow for n=6, m=9, w=3")
    report.add("computation steps", 39, solution.measured_steps)
    report.add("x stream length", 20, len(x_stream))
    report.add("y-input stream length", 18, len(y_in_stream))
    report.add("y-output stream length", 18, len(y_out_stream))
    report.add("values fed back", 12, len(solution.feedback_delays))
    report.add("feedback delay (= w)", 3, max(solution.feedback_delays))
    assert report.all_match
    show_report(report)


def test_fig3_inputs_arrive_every_other_cycle(benchmark, rng):
    matrix = rng.uniform(-1.0, 1.0, size=(6, 9))
    x = rng.uniform(-1.0, 1.0, size=9)
    solver = SizeIndependentMatVec(3, record_trace=True)
    solution = benchmark(solver.solve, matrix, x, None)
    cycles = solution.trace.rows["x in"].cycles()
    assert all(later - earlier == 2 for earlier, later in zip(cycles, cycles[1:]))
    out_cycles = solution.trace.rows["y out"].cycles()
    assert all(later - earlier == 2 for earlier, later in zip(out_cycles, out_cycles[1:]))
