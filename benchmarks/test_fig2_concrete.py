"""F2 — Fig. 2: the concrete case n=6, m=9, w=3, with the overlap partition.

Regenerates the block structures of Fig. 2.a/2.b and the optimal
partitioning (the dotted line) that splits the transformed problem into two
disjoint sub-problems of three band block rows each.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import render_fig2_concrete_case
from repro.analysis.report import ExperimentReport
from repro.core.dbt import DBTByRowsTransform
from repro.core.matvec import SizeIndependentMatVec
from repro.core.schedule import plan_overlap_partition


def test_fig2_block_structure_and_partition(benchmark, rng, show_report):
    n, m, w = 6, 9, 3

    def build():
        matrix = rng.uniform(-1.0, 1.0, size=(n, m))
        transform = DBTByRowsTransform(matrix, w)
        partition = plan_overlap_partition(n, m, w)
        return transform, partition, render_fig2_concrete_case(n, m, w)

    transform, partition, text = benchmark(build)

    report = ExperimentReport("F2", "Fig. 2 — concrete case n=6, m=9, w=3")
    report.add("band block rows", 6, transform.block_row_count)
    report.add("x~ elements", 20, transform.band_cols)
    report.add("cut position (band block rows in first half)", 3, partition.cut_band_block_row)
    report.add("original block rows per half", 1, partition.first_block_rows)
    assert report.all_match
    assert "cut after band block row 2" in text
    show_report(report)


def test_fig2_partitioned_halves_run_independently(benchmark, rng):
    """The two halves of the cut share no feedback, so each solves alone."""
    n, m, w = 6, 9, 3
    matrix = rng.uniform(-1.0, 1.0, size=(n, m))
    x = rng.uniform(-1.0, 1.0, size=m)
    b = rng.uniform(-1.0, 1.0, size=n)

    def run_halves():
        top = SizeIndependentMatVec(w).solve(matrix[:3], x, b[:3])
        bottom = SizeIndependentMatVec(w).solve(matrix[3:], x, b[3:])
        return np.concatenate([top.y, bottom.y])

    y = benchmark(run_halves)
    assert np.allclose(y, matrix @ x + b)
