"""F5 — Fig. 5: spiral feedback interconnection of the hexagonal array.

The figure shows the hexagonal array with its output diagonals fed back to
input diagonals: the main diagonal onto itself and the sub-diagonals in
pairs, such that every loop crosses exactly ``w`` processing elements.
This benchmark rebuilds the topology for a range of array sizes and checks
the loop structure and the memory-element counts stated in Section 3.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import render_fig5_spiral_topology
from repro.analysis.report import ExperimentReport
from repro.systolic.feedback import SpiralFeedbackTopology


@pytest.mark.parametrize("w", [2, 3, 4, 6, 8])
def test_fig5_spiral_topology(benchmark, w, show_report):
    topology = benchmark(SpiralFeedbackTopology, w)

    report = ExperimentReport("F5", f"Fig. 5 — spiral feedback topology, w={w}")
    report.add("feedback loops", w, topology.loop_count)
    report.add("PEs per loop", w, max(loop.cells for loop in topology.loops))
    report.add(
        "main-diagonal registers (2w)", 2 * w, topology.loops[0].registers
    )
    report.add(
        "regular registers total (2w + (w-1) w)",
        2 * w + (w - 1) * w,
        topology.regular_register_count(),
    )
    report.add(
        "irregular registers (3 w (w-1) / 2)",
        3 * w * (w - 1) // 2,
        topology.irregular_register_count(),
    )
    assert report.all_match
    assert all(loop.cells == w for loop in topology.loops)
    show_report(report)


def test_fig5_rendering_names_every_loop(benchmark):
    text = benchmark(render_fig5_spiral_topology, 4)
    assert text.count("->") == 4
    assert "auto-feedback" in text
