"""T3 — the DBT-by-rows feedback delay equals the array size ``w``.

Section 2: "In a DBT-by-rows, the number of steps to have the required
feedback equals the array size, w, and can be implemented with w
registers."  The benchmark measures, for a range of array sizes and problem
shapes, the delay between every partial result leaving the array and
re-entering it, and the peak occupancy of the register chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import ExperimentReport
from repro.core.analytic import matvec_feedback_delay, matvec_feedback_registers
from repro.core.matvec import SizeIndependentMatVec


@pytest.mark.parametrize("w", [2, 3, 4, 5, 6])
def test_t3_feedback_delay_equals_w(benchmark, rng, w, show_report):
    n, m = 4 * w, 3 * w
    matrix = rng.uniform(-1.0, 1.0, size=(n, m))
    x = rng.uniform(-1.0, 1.0, size=m)
    b = rng.uniform(-1.0, 1.0, size=n)

    solver = SizeIndependentMatVec(w)
    solution = benchmark(solver.solve, matrix, x, b)
    assert np.allclose(solution.y, matrix @ x + b)

    delays = solution.feedback_delays
    report = ExperimentReport("T3", f"feedback delay and registers, w={w}")
    report.add("feedback delay (every value)", matvec_feedback_delay(w), max(delays))
    report.add("feedback delay (minimum)", matvec_feedback_delay(w), min(delays))
    report.add(
        "registers occupied at peak (<= w)",
        matvec_feedback_registers(w),
        solution.run.feedback_register_peak,
        "peak occupancy; w registers suffice",
    )
    report.add("values fed back", 4 * (3 - 1) * w, len(delays))
    assert set(delays) == {w}
    assert solution.run.feedback_register_peak <= w
    assert report.rows[0].matches and report.rows[1].matches
    show_report(report)


def test_t3_delay_independent_of_problem_size(benchmark, rng, show_report):
    """Growing the problem changes nothing about the feedback delay."""
    w = 3

    def sweep():
        results = []
        for scale in (1, 2, 4):
            n = m = 3 * w * scale
            matrix = rng.uniform(-1.0, 1.0, size=(n, m))
            x = rng.uniform(-1.0, 1.0, size=m)
            solution = SizeIndependentMatVec(w).solve(matrix, x)
            results.append((n, solution))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport("T3b", "feedback delay vs problem size (w=3)")
    for n, solution in results:
        report.add(f"delay at n=m={n}", w, max(solution.feedback_delays))
    assert report.all_match
    show_report(report)
