"""T5/T6 — matrix-matrix time and utilization formulas (Section 3).

Sweeps problem shapes, measures the step count (the span of the C stream,
the paper's convention) and the utilization of the ``w x w`` hexagonal
array, and checks them against

    T   = 3 w p_bar n_bar m_bar + 4w - 5
    eta = 1 / (3 + 4/(p n m) - 5/(w p n m))  ->  1/3.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.analytic import matmul_steps, matmul_utilization
from repro.core.matmul import SizeIndependentMatMul
from repro.matrices.padding import block_count

SWEEP = [
    (3, 3, 3, 3),
    (6, 3, 3, 3),
    (6, 6, 6, 3),
    (6, 6, 9, 3),
    (4, 4, 4, 2),
    (8, 8, 8, 2),
    (8, 4, 8, 4),
]


def run_sweep(rng):
    rows = []
    for n, p, m, w in SWEEP:
        a = rng.uniform(-1.0, 1.0, size=(n, p))
        b = rng.uniform(-1.0, 1.0, size=(p, m))
        e = rng.uniform(-1.0, 1.0, size=(n, m))
        solution = SizeIndependentMatMul(w).solve(a, b, e)
        assert np.allclose(solution.c, a @ b + e)
        rows.append((n, p, m, w, solution))
    return rows


def test_t5_step_counts(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng,), rounds=1, iterations=1)
    report = ExperimentReport("T5", "matrix-matrix steps: T = 3 w pnm + 4w - 5")
    for n, p, m, w, solution in rows:
        expected = matmul_steps(
            block_count(n, w), block_count(p, w), block_count(m, w), w
        )
        report.add(f"T(n={n}, p={p}, m={m}, w={w})", expected, solution.measured_steps)
    assert report.all_match
    show_report(report)


def test_t6_utilization(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng,), rounds=1, iterations=1)
    report = ExperimentReport(
        "T6",
        "matrix-matrix utilization -> 1/3 (measured includes the duplicated tail corner)",
    )
    for n, p, m, w, solution in rows:
        expected = matmul_utilization(
            block_count(n, w), block_count(p, w), block_count(m, w), w
        )
        report.add(
            f"eta(n={n}, p={p}, m={m}, w={w})",
            expected,
            solution.measured_utilization,
            "within tail-corner overhead" if not np.isclose(expected, solution.measured_utilization, rtol=0.01) else "",
        )
    # The closed form is a lower bound of the measured value (the array also
    # executes the discarded tail-corner products) and the two converge as
    # the problem grows.
    for n, p, m, w, solution in rows:
        expected = matmul_utilization(
            block_count(n, w), block_count(p, w), block_count(m, w), w
        )
        assert solution.measured_utilization >= expected - 1e-12
        assert solution.measured_utilization <= expected * 1.25
    largest = rows[3][4]
    assert abs(largest.measured_utilization - 1.0 / 3.0) < 0.03
    show_report(report)


def test_t6_utilization_never_exceeds_one_third_asymptote_by_much(benchmark, rng, show_report):
    a = rng.uniform(-1.0, 1.0, size=(9, 9))
    b = rng.uniform(-1.0, 1.0, size=(9, 9))
    solver = SizeIndependentMatMul(3)
    solution = benchmark.pedantic(solver.solve, args=(a, b), rounds=1, iterations=1)
    report = ExperimentReport("T6b", "utilization of a 3x3-block problem, w=3")
    report.add("eta", matmul_utilization(3, 3, 3, 3), solution.measured_utilization,
               "measured includes tail corner")
    assert solution.measured_utilization < 1.0 / 3.0 + 0.02
    show_report(report)
