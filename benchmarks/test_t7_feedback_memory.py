"""T7 — spiral feedback memory and delays of the matrix-matrix array.

Section 3 states that feedback with constant delay needs ``2w`` registers
for the main diagonal and ``w`` per sub-diagonal pair, that the irregular
cases need ``3 w (w-1) / 2`` additional memory elements, and that the
irregular delays grow like ``6 (w-1)(n_bar-1) p_bar + w`` (first block
row) and ``6 (n_bar p_bar)(m_bar-1)(w-1) + w`` (global wrap-around).

The register counts are checked exactly.  The delays depend on the exact
input schedule, which this reproduction implements with the canonical
``t = i + j + k`` systolic schedule rather than the authors' unpublished
variant, so for them the benchmark checks the *shape*: the regular delays
are a constant bounded by ``3w`` regardless of problem size, while the
irregular delays grow linearly with the same block products as the paper's
expressions, and only affect the first and last original block rows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.analytic import (
    matmul_irregular_delay_first_row,
    matmul_irregular_delay_wraparound,
    matmul_irregular_feedback_registers,
    matmul_regular_feedback_registers,
)
from repro.core.matmul import SizeIndependentMatMul
from repro.systolic.feedback import SpiralFeedbackTopology


def test_t7_register_counts(benchmark, show_report):
    report = ExperimentReport("T7", "spiral feedback memory elements")

    def build():
        return [SpiralFeedbackTopology(w) for w in (2, 3, 4, 6)]

    topologies = benchmark(build)
    for topology in topologies:
        w = topology.w
        report.add(
            f"regular registers, w={w}",
            matmul_regular_feedback_registers(w),
            topology.regular_register_count(),
        )
        report.add(
            f"irregular registers, w={w}",
            matmul_irregular_feedback_registers(w),
            topology.irregular_register_count(),
        )
    assert report.all_match
    show_report(report)


def test_t7_regular_delays_constant_irregular_delays_grow(benchmark, rng, show_report):
    w = 3

    def sweep():
        results = []
        for m_blocks in (1, 2, 3):
            n = p = 2 * w
            m = m_blocks * w
            a = rng.uniform(-1.0, 1.0, size=(n, p))
            b = rng.uniform(-1.0, 1.0, size=(p, m))
            solution = SizeIndependentMatMul(w).solve(a, b)
            assert np.allclose(solution.c, a @ b)
            results.append((m_blocks, solution.feedback_classification()))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        "T7b", "feedback delays vs problem size (w=3, n_bar=p_bar=2)"
    )
    for m_blocks, classification in results:
        report.add(
            f"max regular delay, m_bar={m_blocks}",
            results[0][1].max_regular_delay,
            classification.max_regular_delay,
            "constant, bounded by 3w",
        )
    # Regular delays never exceed the 3w bound.
    for _m_blocks, classification in results:
        assert classification.max_regular_delay <= 3 * w
    # Irregular delays grow monotonically with m_bar, as the paper's
    # wrap-around expression 6 (n p)(m-1)(w-1) + w does.
    irregular_maxima = [c.max_irregular_delay for _m, c in results]
    assert irregular_maxima == sorted(irregular_maxima)
    assert irregular_maxima[-1] > irregular_maxima[0]
    paper_growth = [
        matmul_irregular_delay_wraparound(2, 2, m_blocks, w) for m_blocks, _c in results
    ]
    assert paper_growth == sorted(paper_growth)
    assert report.all_match
    show_report(report)


def test_t7_irregular_feedback_limited_to_first_and_last_block_rows(
    benchmark, rng, show_report
):
    w = 3
    a = rng.uniform(-1.0, 1.0, size=(9, 6))
    b = rng.uniform(-1.0, 1.0, size=(6, 9))
    solver = SizeIndependentMatMul(w)
    solution = benchmark.pedantic(solver.solve, args=(a, b), rounds=1, iterations=1)
    classification = solution.feedback_classification()

    n_bar = solution.operands.n_bar
    block_rows = {alpha // w for (alpha, _gamma), _delay in classification.irregular}
    report = ExperimentReport(
        "T7c", "irregular feedback is confined to the first and last block rows"
    )
    report.add("irregular feedback events", len(classification.irregular), len(classification.irregular))
    assert block_rows <= {0, n_bar - 1}
    # And the paper's first-row expression grows with n_bar like ours does.
    assert matmul_irregular_delay_first_row(n_bar, 2, w) > matmul_irregular_delay_first_row(1, 2, w)
    show_report(report)
