"""Warm-plan iterative solving vs. per-sweep plan rebuilding.

The claim the :mod:`repro.iterative` subsystem exists to win: because
every sweep of an iterative method reuses the same ``(kind, shapes, w,
options)`` plan, a k-iteration solve costs one plan compilation plus k
warm vectorized executions.  The baseline is the same Jacobi arithmetic
with *no* plan reuse — a fresh :class:`~repro.api.solver.Solver` per
sweep, paying the DBT transform construction every time, which is what a
stateless per-request serving model would do.  The subsystem must be at
least **5x** faster; values must stay bit-identical.

Results are recorded in ``BENCH_iterative.json`` at the repository root
(git-sha-keyed trajectory point; CI uploads it as an artifact).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria

N = 64
W = 4
SWEEPS = 12

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_iterative.json"


def _system(rng: np.random.Generator):
    """A diagonally dominant SPD system (Jacobi-convergent, well scaled)."""
    a = rng.normal(size=(N, N))
    matrix = (a + a.T) / 2.0
    matrix += (np.abs(matrix).sum(axis=1).max() + 1.0) * np.eye(N)
    return matrix, rng.normal(size=N)


def _jacobi_without_plan_reuse(matrix, b) -> "tuple[float, np.ndarray]":
    """K Jacobi sweeps where every sweep pays a fresh plan compilation."""
    diagonal = np.diag(matrix)
    off_diagonal = matrix - np.diagflat(diagonal)
    x = np.zeros(N)
    start = time.perf_counter()
    for _ in range(SWEEPS):
        product = Solver(ArraySpec(W)).solve("matvec", off_diagonal, x)
        x = (b - product.values) / diagonal
    return time.perf_counter() - start, x


class TestIterativeWarmSpeedup:
    def test_warm_jacobi_at_least_5x_per_sweep_rebuild(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        matrix, b = _system(rng)
        options = ExecutionOptions(
            criteria=ConvergenceCriteria(atol=1e-280, max_iter=SWEEPS)
        )

        cold_time, cold_x = _jacobi_without_plan_reuse(matrix, b)

        solver = Solver(ArraySpec(W), options=options)
        solver.solve("jacobi", matrix, b)  # warm the engine's plans
        before = counters.snapshot()
        start = time.perf_counter()
        warm = solver.solve("jacobi", matrix, b)
        warm_time = time.perf_counter() - start
        delta = counters.delta(before)

        assert warm.stats["iterations"] == SWEEPS
        # The whole warm job recompiled nothing — not even its first sweep.
        assert delta.plan_builds == 0
        assert delta.transform_constructions == 0
        assert delta.iterative_sweeps == SWEEPS
        assert np.array_equal(warm.values, cold_x)

        speedup = cold_time / warm_time
        assert speedup >= 5.0, (
            f"plan-cached Jacobi gave only {speedup:.2f}x over per-sweep "
            f"rebuilding ({warm_time * 1e3:.2f} ms vs {cold_time * 1e3:.2f} ms "
            f"for {SWEEPS} sweeps on n={N}); the iterative subsystem's plan "
            f"reuse regressed"
        )

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "iterative_warm_speedup",
                "unix_time": time.time(),
                "workload": {"method": "jacobi", "n": N, "w": W, "sweeps": SWEEPS},
                "per_sweep_rebuild": {"seconds": cold_time},
                "warm_plan_cache": {
                    "seconds": warm_time,
                    "plan_builds": delta.plan_builds,
                    "cache_hits": warm.stats["cache"].hits,
                    "cache_misses": warm.stats["cache"].misses,
                },
                "speedup": speedup,
            },
        )

        report = ExperimentReport(
            experiment="iterative solving: warm plan cache vs per-sweep rebuild",
            description=f"jacobi, n={N}, w={W}, {SWEEPS} sweeps",
        )
        report.add(
            "warm >= 5x rebuild",
            1,
            int(speedup >= 5.0),
            note=(
                f"rebuild {cold_time * 1e3:.2f} ms, warm {warm_time * 1e3:.2f} ms "
                f"({speedup:.1f}x)"
            ),
        )
        report.add(
            "plan builds during warm job",
            0,
            delta.plan_builds,
            note=f"{SWEEPS} sweeps, all warm executions",
        )
        show_report(report)
