"""T4 — the PRT transformation is DBT-by-rows with n_bar = m_bar = 1.

Section 2: "The PRT transformation proposed by R.W. Priester et al. is a
particular case of the DBT-by-rows when n_bar = m_bar = 1."  The benchmark
compares the two transformations on single-block problems (identical band,
identical schedule, identical result) and contrasts the array sizes of PRT
and of the naive full-band strategy it improves on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import ExperimentReport
from repro.baselines.naive_band import NaiveBlockMatVec
from repro.baselines.prt import PRTMatVec, PRTTransform
from repro.core.dbt import DBTByRowsTransform
from repro.core.matvec import SizeIndependentMatVec


@pytest.mark.parametrize("w", [2, 3, 4, 6])
def test_t4_prt_equals_single_block_dbt(benchmark, rng, w, show_report):
    matrix = rng.uniform(-1.0, 1.0, size=(w, w))
    x = rng.uniform(-1.0, 1.0, size=w)
    b = rng.uniform(-1.0, 1.0, size=w)

    def both():
        prt = PRTTransform(matrix, w)
        dbt = DBTByRowsTransform(matrix, w)
        prt_solution = PRTMatVec(w).solve(matrix, x, b)
        dbt_solution = SizeIndependentMatVec(w).solve(matrix, x, b)
        return prt, dbt, prt_solution, dbt_solution

    prt, dbt, prt_solution, dbt_solution = benchmark(both)

    assert np.allclose(prt.band.to_dense(), dbt.band.to_dense())
    assert np.allclose(prt_solution.y, dbt_solution.y)
    assert np.allclose(prt_solution.y, matrix @ x + b)

    report = ExperimentReport("T4", f"PRT vs single-block DBT, w={w}")
    report.add("steps (PRT)", dbt_solution.measured_steps, prt_solution.measured_steps)
    report.add("array cells (PRT = w)", w, PRTMatVec(w).array_size)
    report.add(
        "array cells (naive full band = 2w-1)",
        2 * w - 1,
        NaiveBlockMatVec(w).array_size,
        "PRT halves the array, as Priester et al. report",
    )
    assert report.all_match
    show_report(report)


def test_t4_dbt_extends_prt_beyond_one_block(benchmark, rng, show_report):
    """What DBT adds on top of PRT: arbitrary sizes on the same w cells."""
    w = 3
    matrix = rng.uniform(-1.0, 1.0, size=(9, 12))
    x = rng.uniform(-1.0, 1.0, size=12)

    solver = SizeIndependentMatVec(w)
    solution = benchmark(solver.solve, matrix, x, None)
    assert np.allclose(solution.y, matrix @ x)

    report = ExperimentReport("T4b", "DBT on a multi-block problem, same w cells")
    report.add("array cells", w, solution.w)
    report.add("steps", solution.predicted_steps, solution.measured_steps)
    assert report.all_match
    show_report(report)
