"""The replay/soak proof: sustained mixed QoS load, zero recompiles.

The :mod:`repro.soak` harness replays a seeded mixed stream (matvec /
matmul / jacobi / pipelined graphs / NN forward passes, across three
priority classes and their client pools) through a full
``SolverService`` — plan store attached, rate limits armed — and this
module asserts the serving stack's operational claims:

* **Sustained throughput**: the measured phase holds an RPS floor while
  every request class completes or fails *typed* (rate-limited / shed /
  deadline — never a stray exception).
* **SLO under QoS**: high-priority p99 stays inside its SLO; under
  deliberate overload (tiny queues, ``shed_oldest``) the low class sheds
  first and the high class keeps its completion rate.
* **Zero recompiles**: after the warm-up replay, the whole stream runs
  with ``plan_builds == 0`` — every plan is resident, compiled once or
  loaded from the store.
* **Span hygiene**: the tracer ends every run with ``open_spans == 0``;
  admission, shed, rejection and failure paths all close their trees.
* **Cold-start = warm-start** (the acceptance criterion): a *fresh
  process* opening the same plan store serves its first request with
  zero plan builds, within 2x the warm median latency (subprocess-
  measured, so nothing in-process can leak warmth).

Scale is environment-switched: the tier-1 run uses a few hundred
requests (seconds); setting ``REPRO_SOAK_FULL=1`` runs the ~1M-request
soak the ISSUE names (minutes — bench mode only).  Either way the
result lands in ``BENCH_soak.json`` keyed by git sha.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis.trajectory import record_trajectory_point
from repro.soak import SoakConfig, run_soak

#: Full soak (~1M requests) only under REPRO_SOAK_FULL=1; the default is
#: a tier-1-sized smoke that exercises every code path of the big run.
FULL = os.environ.get("REPRO_SOAK_FULL", "") == "1"
N_REQUESTS = 1_000_000 if FULL else 600
#: Sustained-throughput floor (requests/second, completed).  The service
#: measures ~1.5-2k on a developer container; the floors leave headroom
#: for slow CI machines while still catching an order-of-magnitude
#: regression.
RPS_FLOOR = 400.0 if FULL else 100.0
#: Per-class p99 SLO (seconds) for the uncontended sustained phase.
P99_SLO = {"high": 0.25, "normal": 0.40, "low": 0.60}

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_soak.json"


class TestSoak:
    def test_sustained_mixed_load_meets_slo(self, tmp_path):
        config = SoakConfig(
            requests=N_REQUESTS,
            store_root=str(tmp_path / "plans"),
        )
        result = run_soak(config)

        assert result.submitted == N_REQUESTS
        # Uncontended (block policy, ample queues): everything completes.
        assert result.completed == result.submitted, (
            f"lost requests: {result.to_dict()}"
        )
        assert result.rps >= RPS_FLOOR, (
            f"sustained only {result.rps:.0f} req/s "
            f"(floor {RPS_FLOOR:.0f}) over {result.elapsed:.2f}s"
        )
        for name, slo in P99_SLO.items():
            p99 = result.by_class[name].percentile(0.99)
            assert p99 <= slo, (
                f"{name} p99 {p99 * 1e3:.1f}ms exceeds its "
                f"SLO {slo * 1e3:.0f}ms"
            )
        # The zero-recompile claim: warm-up made every plan resident.
        assert result.counter_delta.plan_builds == 0, (
            f"{result.counter_delta.plan_builds} plans rebuilt during the "
            f"measured phase — warm-up coverage regressed"
        )
        # Span hygiene: every admission/execution path closed its tree.
        assert result.open_spans == 0
        # The store saw every warm-up compile written through.
        assert result.store_stats is not None
        assert result.store_stats["writes"] > 0

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "soak_replay",
                "unix_time": time.time(),
                "mode": "full" if FULL else "smoke",
                **result.to_dict(),
            },
        )

    def test_overload_sheds_low_class_first(self):
        """Tiny queues + shed_oldest: the low class absorbs the overload."""
        config = SoakConfig(
            requests=1_200,
            queue_depth=8,
            backpressure="shed_oldest",
            inflight=16,
            rate_limits={"batch-0": 50.0, "batch-1": 50.0},
        )
        result = run_soak(config)
        high, low = result.by_class["high"], result.by_class["low"]

        assert low.shed >= high.shed, (
            f"shed inversion: low shed {low.shed}, high shed {high.shed}"
        )
        assert low.rate_limited > 0, (
            "the batch clients' 50 req/s rate limits never fired"
        )
        high_rate = high.completed / high.submitted
        low_rate = low.completed / low.submitted
        assert high_rate >= low_rate, (
            f"completion inversion under overload: high {high_rate:.3f} "
            f"vs low {low_rate:.3f}"
        )
        assert high_rate >= 0.95, (
            f"high class lost {1 - high_rate:.1%} under an overload the "
            f"low class should have absorbed"
        )
        # Typed failures only, and every one of them closed its span.
        for stats in result.by_class.values():
            assert stats.other_errors == 0
        assert result.open_spans == 0
        assert result.counter_delta.plan_builds == 0

    def test_cold_process_first_request_hits_warm_latency(self, tmp_path):
        """A fresh process on a warmed store: 0 builds, ~warm latency."""
        store_root = str(tmp_path / "plans")
        # Phase 1 (this process): warm the store and measure warm latency.
        import numpy as np

        from repro.service import SolverService
        from repro.store import PlanStore

        rng = np.random.default_rng(7)
        a, x = rng.standard_normal((24, 24)), rng.standard_normal(24)
        service = SolverService(4, n_shards=2, store=PlanStore(store_root))
        service.submit("matvec", a, x).result(30.0)  # compile + persist
        warm = []
        for _ in range(30):
            t0 = time.perf_counter()
            service.submit("matvec", a, x).result(30.0)
            warm.append(time.perf_counter() - t0)
        service.close()
        warm_median = sorted(warm)[len(warm) // 2]

        # Phase 2: a genuinely cold interpreter opens the same store.
        probe = (
            "import json, time, numpy as np\n"
            "from repro.instrumentation import counters\n"
            "from repro.service import SolverService\n"
            "from repro.store import PlanStore\n"
            f"store = PlanStore({store_root!r})\n"
            "service = SolverService(4, n_shards=2, store=store)\n"
            "rng = np.random.default_rng(7)\n"
            "a, x = rng.standard_normal((24, 24)), rng.standard_normal(24)\n"
            "before = counters.snapshot()\n"
            "t0 = time.perf_counter()\n"
            "service.submit('matvec', a, x).result(30.0)\n"
            "first = time.perf_counter() - t0\n"
            "delta = counters.delta(before)\n"
            "service.close()\n"
            "print(json.dumps({'first_s': first,"
            " 'plan_builds': delta.plan_builds,"
            " 'store_hits': store.stats.hits}))\n"
        )
        src_dir = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir)
        out = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert out.returncode == 0, out.stderr
        cold = json.loads(out.stdout.strip().splitlines()[-1])

        assert cold["plan_builds"] == 0, (
            f"cold process compiled {cold['plan_builds']} plans despite the "
            f"warmed store"
        )
        assert cold["store_hits"] >= 1  # warm_start preloaded from disk
        # 2x warm median, with an absolute floor absorbing scheduler
        # noise at millisecond scales.
        budget = max(2.0 * warm_median, 0.05)
        assert cold["first_s"] <= budget, (
            f"cold first request took {cold['first_s'] * 1e3:.1f}ms; "
            f"budget {budget * 1e3:.1f}ms (warm median "
            f"{warm_median * 1e3:.1f}ms)"
        )


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-v"]))
