"""X2 — ablation: the block-sparse refinement of DBT (Section 4 conclusions).

The paper's conclusions predict that, for matrices "of a known degree of
sparsity", excluding the zero-valued sub-matrices from the transformation
reduces the computational time.  This ablation sweeps the block density of
the operand and compares the plain (dense) DBT against the block-sparse
variant implemented in ``repro.extensions.sparse``: same array, same
results, fewer steps — with the saving growing as the density drops, and
the fully dense case degenerating exactly to plain DBT-by-rows.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.matvec import SizeIndependentMatVec
from repro.extensions.sparse import BlockSparseMatVec


def block_sparse_matrix(rng, block_rows, block_cols, w, density):
    matrix = np.zeros((block_rows * w, block_cols * w))
    for i in range(block_rows):
        for j in range(block_cols):
            if rng.uniform() < density:
                matrix[i * w : (i + 1) * w, j * w : (j + 1) * w] = rng.uniform(
                    -1.0, 1.0, size=(w, w)
                )
    return matrix


def test_x2_block_sparse_vs_dense_dbt(benchmark, rng, show_report):
    w = 3
    densities = [1.0, 0.7, 0.4, 0.2]

    def run():
        rows = []
        for density in densities:
            matrix = block_sparse_matrix(rng, 5, 6, w, density)
            x = rng.uniform(-1.0, 1.0, size=matrix.shape[1])
            b = rng.uniform(-1.0, 1.0, size=matrix.shape[0])
            dense = SizeIndependentMatVec(w).solve(matrix, x, b)
            sparse = BlockSparseMatVec(w).solve(matrix, x, b)
            reference = matrix @ x + b
            assert np.allclose(dense.y, reference)
            assert np.allclose(sparse.y, reference)
            rows.append((density, dense, sparse))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport(
        "X2", "block-sparse DBT vs plain DBT (w=3, 5x6 block grid)"
    )
    for density, dense, sparse in rows:
        report.add(
            f"steps at density {density:.1f} (dense DBT)",
            dense.measured_steps,
            dense.measured_steps,
        )
        report.add(
            f"steps at density {density:.1f} (sparse DBT)",
            sparse.measured_steps,
            sparse.measured_steps,
            f"saving {sparse.saving:.0%}, "
            f"{sparse.transform.skipped_block_count} blocks skipped",
        )
        assert sparse.measured_steps <= dense.measured_steps
    # Fully dense degenerates to plain DBT; savings grow monotonically as the
    # density falls.
    assert rows[0][2].measured_steps == rows[0][1].measured_steps
    savings = [sparse.saving for _d, _dense, sparse in rows]
    assert savings == sorted(savings)
    show_report(report)


def test_x2_sparse_keeps_feedback_and_correctness(benchmark, rng, show_report):
    w = 4
    matrix = block_sparse_matrix(rng, 4, 4, w, 0.4)
    x = rng.uniform(-1.0, 1.0, size=matrix.shape[1])
    solver = BlockSparseMatVec(w)
    solution = benchmark(solver.solve, matrix, x, None)
    assert np.allclose(solution.y, matrix @ x)

    report = ExperimentReport("X2b", "sparse DBT keeps the constant feedback delay")
    if solution.run is not None and solution.run.feedback_events:
        report.add("feedback delay (= w)", w, max(solution.run.feedback_delays()))
    report.add("array cells", w, solution.w)
    assert report.all_match
    show_report(report)
