"""Compiled pipeline graphs vs. per-stage string-kind calls.

The claim the :mod:`repro.graph` redesign exists to win: a chained
workload ``refine(M, A @ (B @ x))`` expressed as a compiled pipeline
executes at least **1.5x** faster than the same computation issued as
three separate ``Solver.solve`` calls.  Two effects stack:

* the program is compiled once — warm re-executions stream values
  through resolved plans with zero plan builds, no per-call shape
  re-validation and no cache probes;
* under ``fuse=True`` the compiler applies the associativity rewrite
  ``(A B) x -> A (B x)``, replacing the O(n^3) matmul stage with a second
  O(n^2) matvec (the rewrite changes floating-point association, so the
  benchmark checks the result against numpy rather than bit-identity —
  the *unfused* program is asserted bit-identical to the per-stage calls
  separately).

Results are recorded in ``BENCH_pipeline.json`` at the repository root
(git-sha-keyed trajectory point; CI uploads it as an artifact).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.graph import Graph, GraphCompiler, MatMul, MatVec, Refine
from repro.instrumentation import counters
from repro.iterative import ConvergenceCriteria

N = 64
W = 4
REPS = 5
SWEEPS = 3

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _workload(rng):
    a = rng.normal(size=(N, N))
    b = rng.normal(size=(N, N))
    z = rng.normal(size=N)
    matrix = rng.normal(size=(N, N)) + N * np.eye(N)
    return a, b, z, matrix


def _options() -> ExecutionOptions:
    return ExecutionOptions(
        criteria=ConvergenceCriteria(atol=1e-280, max_iter=SWEEPS)
    )


class TestPipelineFusion:
    def test_fused_graph_at_least_1_5x_three_separate_solves(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        a, b, z, matrix = _workload(rng)

        # -- the unfused baseline: three separate string-kind calls -------
        solver = Solver(ArraySpec(W), options=_options())
        product = solver.solve("matmul", a, b).values  # warm every plan
        projected = solver.solve("matvec", product, z).values
        solver.solve("refine", matrix, projected)
        start = time.perf_counter()
        for _ in range(REPS):
            product = solver.solve("matmul", a, b).values
            projected = solver.solve("matvec", product, z).values
            unfused_x = solver.solve("refine", matrix, projected).values
        unfused_time = (time.perf_counter() - start) / REPS

        # -- the pipeline: compile once, execute warm ---------------------
        graph = Graph(
            Refine(
                matrix,
                MatVec(MatMul(a, b, name="product"), z, name="projected"),
                name="refined",
            )
        )
        graph_solver = Solver(ArraySpec(W), options=_options())
        unfused_program = GraphCompiler(graph_solver).compile(graph)
        assert np.array_equal(
            unfused_program.run().output("refined"), unfused_x
        ), "the unfused pipeline must be bit-identical to per-stage solves"

        fused_program = GraphCompiler(graph_solver, fuse=True).compile(graph)
        assert fused_program.fused_rewrites == 1
        fused_program.run()  # warm the fused matvec plans
        before = counters.snapshot()
        start = time.perf_counter()
        for _ in range(REPS):
            result = fused_program.run()
        fused_time = (time.perf_counter() - start) / REPS
        delta = counters.delta(before)

        assert delta.plan_builds == 0, "warm pipeline runs must build nothing"
        assert delta.transform_constructions == 0
        assert result.warm
        expected = np.linalg.solve(matrix, a @ (b @ z))
        assert np.allclose(result.output("refined"), expected, atol=1e-8)

        speedup = unfused_time / fused_time
        assert speedup >= 1.5, (
            f"compiled+fused pipeline gave only {speedup:.2f}x over three "
            f"separate solve calls ({fused_time * 1e3:.2f} ms vs "
            f"{unfused_time * 1e3:.2f} ms for n={N}); the graph layer's "
            f"fusion/plan-reuse advantage regressed"
        )

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "pipeline_fusion",
                "unix_time": time.time(),
                "workload": {
                    "stages": ["matmul", "matvec", "refine"],
                    "n": N,
                    "w": W,
                    "refine_sweeps": SWEEPS,
                    "reps": REPS,
                },
                "three_separate_solves": {"seconds": unfused_time},
                "fused_pipeline": {
                    "seconds": fused_time,
                    "plan_builds_warm": delta.plan_builds,
                    "fused_rewrites": fused_program.fused_rewrites,
                    "stages": len(fused_program.stages),
                },
                "speedup": speedup,
            },
        )

        report = ExperimentReport(
            experiment="pipeline graphs: fused compiled program vs separate solves",
            description=f"refine(M, A @ (B @ x)), n={N}, w={W}",
        )
        report.add(
            "fused pipeline >= 1.5x separate solves",
            1,
            int(speedup >= 1.5),
            note=(
                f"separate {unfused_time * 1e3:.2f} ms, fused "
                f"{fused_time * 1e3:.2f} ms ({speedup:.1f}x)"
            ),
        )
        report.add(
            "plan builds during warm runs",
            0,
            delta.plan_builds,
            note=f"{REPS} warm executions of a {len(fused_program.stages)}-stage program",
        )
        show_report(report)
