"""Quantized int8 vs float64 MLP inference on the vectorized backend.

The claim the :mod:`repro.nn` subsystem exists to win: an int8 forward
pass through the same compiled-pipeline machinery executes at least
**1.5x** faster than the float64 forward pass of the identical network.
Integer addition is exactly associative, so the int8 dense stages replay
the systolic accumulation as blocked int32 reductions instead of the
float path's timestep-ordered sweep loop — bit-identical to the
cycle-accurate simulator, but a fraction of the host work.

Both networks compile once; the measured runs are pure warm execution
(asserted: zero plan builds, zero transform constructions).  The cold
(compile) vs warm build split and both throughputs are recorded in
``BENCH_nn.json`` at the repository root (git-sha-keyed trajectory
point; CI uploads it as an artifact).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.graph import GraphCompiler
from repro.instrumentation import counters
from repro.nn import MLP

SIZES = (1024, 512, 128, 16)  # 3 layers -> a 14-stage quantized graph
W = 8
REPS = 20

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_nn.json"


def _network(rng) -> MLP:
    layers = [
        (
            rng.normal(size=(fan_out, fan_in)) / np.sqrt(fan_in),
            rng.normal(size=fan_out) * 0.1,
        )
        for fan_in, fan_out in zip(SIZES, SIZES[1:])
    ]
    return MLP(layers)


class TestNNInference:
    def test_int8_forward_at_least_1_5x_float64(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        mlp = _network(rng)
        calibration = [rng.normal(size=SIZES[0]) for _ in range(4)]
        qmlp = mlp.quantized(calibration)
        x = calibration[0]
        solver = Solver(
            ArraySpec(W), options=ExecutionOptions(backend="vectorized")
        )
        compiler = GraphCompiler(solver)

        # -- compile both forward passes, splitting cold from warm --------
        # (int8 first so its cold count is the full graph; the float
        # program then shares the dtype-neutral bias/relu plans.)
        int8_program = compiler.compile(qmlp.graph(x))
        float_program = compiler.compile(mlp.graph(x))
        int8_cold = int8_program.run()
        float_cold = float_program.run()
        cold_builds = (
            float_cold.compile_plan_builds + int8_cold.compile_plan_builds
        )
        assert int8_cold.compile_plan_builds == len(int8_program.stages)
        assert float_cold.compile_plan_builds < len(float_program.stages)

        # -- warm float64 forward -----------------------------------------
        start = time.perf_counter()
        for _ in range(REPS):
            float_result = float_program.run()
        float_time = (time.perf_counter() - start) / REPS

        # -- warm int8 forward --------------------------------------------
        before = counters.snapshot()
        start = time.perf_counter()
        for _ in range(REPS):
            int8_result = int8_program.run()
        int8_time = (time.perf_counter() - start) / REPS
        delta = counters.delta(before)

        assert delta.plan_builds == 0, "warm pipeline runs must build nothing"
        assert delta.transform_constructions == 0
        assert float_result.warm and int8_result.warm

        # Correctness alongside speed: the int8 logits stay within the
        # analytically derived quantization bound of the float logits.
        bounds = qmlp.error_bounds(x)["logits"]
        drift = np.abs(
            int8_result.output("logits") - float_result.output("logits")
        )
        assert np.all(drift <= bounds + 1e-9)

        speedup = float_time / int8_time
        assert speedup >= 1.5, (
            f"int8 inference gave only {speedup:.2f}x over float64 "
            f"({int8_time * 1e3:.2f} ms vs {float_time * 1e3:.2f} ms for "
            f"layers {SIZES}, w={W}); the quantized datapath's blocked "
            f"int32 accumulation advantage regressed"
        )

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "nn_inference",
                "unix_time": time.time(),
                "workload": {
                    "layer_sizes": list(SIZES),
                    "w": W,
                    "reps": REPS,
                    "float_stages": len(float_program.stages),
                    "int8_stages": len(int8_program.stages),
                },
                "float64_forward": {"seconds": float_time},
                "int8_forward": {
                    "seconds": int8_time,
                    "plan_builds_cold": cold_builds,
                    "plan_builds_warm": delta.plan_builds,
                    "max_logit_drift": float(drift.max()),
                    "logit_error_bound": float(bounds.max()),
                },
                "speedup": speedup,
            },
        )

        report = ExperimentReport(
            experiment="nn inference: int8 vs float64 compiled forward pass",
            description=f"{len(SIZES) - 1}-layer MLP {SIZES}, w={W}",
        )
        report.add(
            "int8 forward >= 1.5x float64",
            1,
            int(speedup >= 1.5),
            note=(
                f"float64 {float_time * 1e3:.2f} ms, int8 "
                f"{int8_time * 1e3:.2f} ms ({speedup:.1f}x)"
            ),
        )
        report.add(
            "plan builds during warm runs",
            0,
            delta.plan_builds,
            note=f"{REPS} warm executions, {cold_builds} cold compile builds",
        )
        report.add(
            "logits within quantization bound",
            1,
            int(np.all(drift <= bounds + 1e-9)),
            note=(
                f"max drift {drift.max():.3g} vs bound {bounds.max():.3g}"
            ),
        )
        show_report(report)
