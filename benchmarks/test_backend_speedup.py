"""Backend speedup: the vectorized diagonal sweeps against the simulator.

The cycle-accurate simulator pays Python-level work per cell per cycle, so
the array time ``T`` the paper derives analytically is also its wall-clock
cost.  The vectorized backend replays the same multiply-accumulate order
with a handful of NumPy sweeps, making warm large-``N`` solves orders of
magnitude faster while staying bit-identical.

Two layers:

* a *smoke* check (always on, including ``--benchmark-disable``) proving
  both backends import, run and agree bit-for-bit on a small problem;
* the wall-clock comparison on an n=512 mat-vec, asserting the >= 10x
  speedup claim on warm (plan-cached) solves.  Skipped in smoke mode,
  where timing is meaningless.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import ArraySpec, ExecutionOptions, Solver


def _solver(w: int, backend: str) -> Solver:
    return Solver(ArraySpec(w=w), options=ExecutionOptions(backend=backend))


def _best_of(callable_, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_backends_agree_smoke(rng):
    """Both backends solve the same problems identically (runs in CI smoke)."""
    w = 4
    a = rng.normal(size=(24, 17))
    x = rng.normal(size=17)
    b = rng.normal(size=24)
    simulated = _solver(w, "simulate").solve("matvec", a, x, b)
    vectorized = _solver(w, "vectorized").solve("matvec", a, x, b)
    assert np.array_equal(vectorized.values, simulated.values)
    assert vectorized.measured_steps == simulated.measured_steps
    assert vectorized.measured_utilization == simulated.measured_utilization

    am = rng.normal(size=(6, 8))
    bm = rng.normal(size=(8, 5))
    mm_simulated = _solver(3, "simulate").solve("matmul", am, bm)
    mm_vectorized = _solver(3, "vectorized").solve("matmul", am, bm)
    assert np.array_equal(mm_vectorized.values, mm_simulated.values)
    assert mm_vectorized.measured_steps == mm_simulated.measured_steps


def test_vectorized_speedup_on_large_matvec(request, rng, show_report):
    """Warm n=512 mat-vec: vectorized sweeps >= 10x faster, same values."""
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("smoke mode: timing comparison disabled")
    from repro.analysis.report import ExperimentReport

    n = m = 512
    w = 8
    a = rng.normal(size=(n, m))
    x = rng.normal(size=m)
    b = rng.normal(size=n)

    simulate = _solver(w, "simulate")
    vectorize = _solver(w, "vectorized")

    # Warm both plan caches so only execution is measured.
    simulate.plan("matvec", shape=(n, m))
    vectorize.plan("matvec", shape=(n, m))

    start = time.perf_counter()
    simulated = simulate.solve("matvec", a, x, b)
    simulate_time = time.perf_counter() - start
    vectorized_holder = []
    vectorize_time = _best_of(
        lambda: vectorized_holder.append(vectorize.solve("matvec", a, x, b))
    )

    assert np.array_equal(vectorized_holder[0].values, simulated.values)
    assert vectorized_holder[0].measured_steps == simulated.measured_steps
    speedup = simulate_time / vectorize_time
    assert speedup >= 10.0, (
        f"vectorized backend only {speedup:.1f}x faster "
        f"(simulate {simulate_time:.3f}s, vectorized {vectorize_time:.6f}s)"
    )

    report = ExperimentReport(
        experiment="backend speedup: n=512 matvec, warm plans",
        description=f"n=m={n}, w={w}; vectorized = best of 3",
    )
    report.add(
        "speedup >= 10x",
        1,
        int(speedup >= 10.0),
        note=(
            f"simulate {simulate_time * 1e3:.1f} ms, vectorized "
            f"{vectorize_time * 1e3:.2f} ms, speedup {speedup:.0f}x"
        ),
    )
    report.add(
        "identical values", 1,
        int(np.array_equal(vectorized_holder[0].values, simulated.values)),
    )
    show_report(report)
