"""F6 — Fig. 6 and the appendix: partial-result placement and recovery.

Fig. 6 defines the U/D/L block notation of the array's input and output
bands; the appendix specifies how the input band is assembled from ``E``
and fed-back output blocks and which output blocks hold the finished
result.  This benchmark derives the same information from the operand
provenance (the accumulation chains), checks its structural properties —
every element of ``C`` has exactly ``p_bar`` non-trivial partials per
triangular piece, every chain head receives ``E``, every chain tail is a
unique output position — and verifies the recovered result numerically.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures import render_fig6_recovery_map
from repro.analysis.report import ExperimentReport
from repro.core.operands import MatMulOperands
from repro.core.recovery import PartialResultMap
from repro.systolic.hex_array import HexagonalArray


def test_fig6_accumulation_chains(benchmark, rng, show_report):
    n, p, m, w = 6, 6, 6, 3
    a = rng.uniform(-1.0, 1.0, size=(n, p))
    b = rng.uniform(-1.0, 1.0, size=(p, m))
    e = rng.uniform(-1.0, 1.0, size=(n, m))
    operands = MatMulOperands(a, b, w)

    placement = benchmark(PartialResultMap, operands)

    chains = placement.chains
    finals = placement.final_positions()
    report = ExperimentReport("F6", "Fig. 6 / appendix — partial result placement")
    report.add("C elements with a chain", n * m, len(chains))
    report.add(
        "minimum partials per element (p_bar)",
        operands.p_bar,
        min(chain.length for chain in chains.values()),
    )
    report.add("distinct final output positions", n * m, len(set(finals.values())))
    assert report.all_match
    show_report(report)

    # Running the derived plan through the array reproduces C = A B + E with
    # no arithmetic outside the array.
    plan = placement.build_token_plan(e)
    run = HexagonalArray(w, w).run(operands.a_operand.band, operands.b_operand.band, plan)
    c = placement.recover_c(run.c_band)
    assert np.allclose(c, a @ b + e)


def test_fig6_rendering(benchmark):
    text = benchmark(render_fig6_recovery_map, 2, 2, 2, 3)
    assert "chain lengths" in text
    assert "band block" in text
