"""F1 — Fig. 1: block structure of the transformed matrix-vector problem.

Regenerates the general block placement of Fig. 1.b (which original
triangle lands in which band block row, and where the transformed vectors
come from) and checks the structural properties the figure illustrates.
"""

from __future__ import annotations


from repro.analysis.figures import render_fig1_block_structure
from repro.analysis.report import ExperimentReport
from repro.core.dbt import DBTByRowsTransform


def test_fig1_block_structure(benchmark, rng, show_report):
    n_bar, m_bar, w = 3, 4, 3
    matrix = rng.uniform(-1.0, 1.0, size=(n_bar * w, m_bar * w))

    def build():
        transform = DBTByRowsTransform(matrix, w)
        text = render_fig1_block_structure(n_bar, m_bar, w)
        return transform, text

    transform, text = benchmark(build)

    # The figure's content: one U and one L per band block row, walking the
    # original blocks row by row, with every triangle used exactly once.
    transform.verify_conditions()
    assert transform.block_row_count == n_bar * m_bar
    uppers = [a.upper_source for a in transform.assignments]
    assert uppers == [(i, j) for i in range(n_bar) for j in range(m_bar)]
    assert transform.is_band_full()
    assert f"Transformed problem structure for n_bar={n_bar}" in text

    report = ExperimentReport("F1", "Fig. 1 — transformed block structure")
    report.add("band block rows", n_bar * m_bar, transform.block_row_count)
    report.add("band rows", n_bar * m_bar * w, transform.band_rows)
    report.add("band columns", n_bar * m_bar * w + w - 1, transform.band_cols)
    report.add(
        "band positions filled from A",
        transform.band.band_positions(),
        len(transform.provenance()),
    )
    assert report.all_match
    show_report(report)


def test_fig1_band_values_trace_back_to_original(benchmark, rng):
    matrix = rng.uniform(-1.0, 1.0, size=(6, 12))
    transform = benchmark(DBTByRowsTransform, matrix, 3)
    band = transform.band
    for (i, j), (oi, oj) in transform.provenance().items():
        assert band.get(i, j) == matrix[oi, oj]
