"""Compiled-backend speedup: fused kernels against the vectorized sweeps.

The vectorized backend replays the simulator's multiply-accumulate order
with one NumPy pass per diagonal band plus gather/scatter index tensors.
The compiled backend lowers the same geometry ahead of time into a
single fused strided-view kernel (optionally Numba-jitted), eliminating
the per-sweep Python dispatch and the gather tensors entirely — same
values, bit for bit, at a fraction of the wall clock.

Two layers, mirroring ``test_backend_speedup.py``:

* a *smoke* check (always on, including ``--benchmark-disable``) proving
  the compiled backend runs and agrees bit-for-bit with both others;
* the wall-clock comparison on warm n=512..2048 mat-vecs, recording the
  measured throughput into ``BENCH_pipeline.json`` (git-SHA keyed, so
  re-runs update rather than duplicate).

The speedup gates are size-dependent because the pure-NumPy fallback's
floor is the strictly sequential per-row fold (``np.add.accumulate`` —
the bit-identity contract forbids reassociating it): that body measures
~1.8x at n=512, crosses 2x around n=1024 and reaches ~3x at n=2048,
where the vectorized backend's gather tensors fall out of cache.  The
hard >= 2x claim is therefore asserted at n=2048 (comfortably
noise-proof in CI) with monotone regression floors below; the Numba
body, when installed, clears every gate with a wide margin.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.compiled import numba_enabled

W = 8
REPS = 5

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"


def _solver(w: int, backend: str) -> Solver:
    return Solver(ArraySpec(w=w), options=ExecutionOptions(backend=backend))


def _best_of(callable_, repeats: int = REPS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_compiled_agrees_smoke(rng):
    """Compiled solves match simulate and vectorized (runs in CI smoke)."""
    w = 4
    a = rng.normal(size=(24, 17))
    x = rng.normal(size=17)
    b = rng.normal(size=24)
    simulated = _solver(w, "simulate").solve("matvec", a, x, b)
    compiled = _solver(w, "compiled").solve("matvec", a, x, b)
    assert np.array_equal(compiled.values, simulated.values)
    assert compiled.measured_steps == simulated.measured_steps
    assert compiled.measured_utilization == simulated.measured_utilization


#: size -> minimum warm speedup over the vectorized backend.  2x is the
#: headline claim; the smaller sizes gate against regressions of the
#: pure-NumPy fallback, whose sequential-fold floor caps them below 2x.
SPEEDUP_FLOORS = {512: 1.3, 1024: 1.6, 2048: 2.0}


@pytest.mark.parametrize("n", sorted(SPEEDUP_FLOORS))
def test_compiled_speedup_on_large_matvec(request, rng, show_report, n):
    """Warm n>=512 mat-vec: compiled kernel beats vectorized, same values."""
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("smoke mode: timing comparison disabled")
    from repro.analysis.report import ExperimentReport

    floor = SPEEDUP_FLOORS[n]
    m = n
    a = rng.normal(size=(n, m))
    x = rng.normal(size=m)
    b = rng.normal(size=n)

    vectorize = _solver(W, "vectorized")
    compile_ = _solver(W, "compiled")

    # Warm both plan caches (and the compiled kernel cache) so only
    # execution is measured.
    vectorize.plan("matvec", shape=(n, m))
    compile_.plan("matvec", shape=(n, m))
    compile_.solve("matvec", a, x, b)

    vectorized_holder = []
    vectorize_time = _best_of(
        lambda: vectorized_holder.append(vectorize.solve("matvec", a, x, b))
    )
    compiled_holder = []
    compile_time = _best_of(
        lambda: compiled_holder.append(compile_.solve("matvec", a, x, b))
    )

    assert np.array_equal(compiled_holder[0].values,
                          vectorized_holder[0].values)
    assert (compiled_holder[0].measured_steps
            == vectorized_holder[0].measured_steps)
    speedup = vectorize_time / compile_time
    assert speedup >= floor, (
        f"compiled backend only {speedup:.2f}x faster at n={n} "
        f"(floor {floor}x; vectorized {vectorize_time * 1e3:.2f} ms, "
        f"compiled {compile_time * 1e3:.2f} ms)"
    )

    record_trajectory_point(
        BENCH_PATH,
        {
            "benchmark": f"compiled_speedup_n{n}",
            "unix_time": time.time(),
            "workload": {"kind": "matvec", "n": n, "m": m, "w": W,
                         "reps": REPS},
            "numba": numba_enabled(),
            "vectorized": {"seconds": vectorize_time},
            "compiled": {"seconds": compile_time},
            "speedup": speedup,
            "floor": floor,
        },
    )

    report = ExperimentReport(
        experiment=f"compiled speedup: n={n} matvec, warm plans",
        description=(
            f"n=m={n}, w={W}; best of {REPS}; "
            f"numba={'on' if numba_enabled() else 'off'}"
        ),
    )
    report.add(
        f"speedup >= {floor}x",
        1,
        int(speedup >= floor),
        note=(
            f"vectorized {vectorize_time * 1e3:.2f} ms, compiled "
            f"{compile_time * 1e3:.2f} ms, speedup {speedup:.2f}x"
        ),
    )
    report.add(
        "identical values", 1,
        int(np.array_equal(compiled_holder[0].values,
                           vectorized_holder[0].values)),
    )
    show_report(report)
