"""Serving-layer throughput: plan-keyed batched shards vs. naive serving.

The claim the :mod:`repro.service` subsystem exists to win: a mixed
concurrent workload served through ``SolverService`` — plan-keyed shard
routing (every plan compiles once, on its home shard), admission batching
(same-plan requests flush together through ``solve_batch``), bounded
queues — sustains **at least 2x** the throughput of the naive serving
model, where each request gets its own handler (one thread per request,
its own ``Solver``, no shared plan state) executed back-to-back.  The
naive model pays a plan compilation per request; the service pays one per
distinct plan *per service*.

For context the report also times the strongest sequential baseline — a
single warm ``Solver`` solving one request at a time — which isolates the
queueing/batching overhead the service adds on top of warm execution.

Results are recorded in ``BENCH_service.json`` at the repository root (a
machine-readable trajectory point, keyed by git sha so re-runs update
rather than duplicate; CI uploads it as an artifact).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, List, Tuple

import numpy as np

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, Solver
from repro.service import SolverService

W = 4
N_SHARDS = 4
N_CLIENTS = 8
MATVEC_SHAPES = ((48, 48), (32, 32), (48, 32))
MATVEC_PER_SHAPE = 40
N_MATMUL = 40
MATMUL_SHAPE = (9, 9)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

Workload = List[Tuple[str, Tuple[np.ndarray, ...]]]


def _mixed_workload(rng: np.random.Generator) -> Workload:
    """An interleaved matvec/matmul request stream (deterministic)."""
    requests: Workload = []
    for shape in MATVEC_SHAPES:
        for _ in range(MATVEC_PER_SHAPE):
            requests.append(
                ("matvec", (rng.normal(size=shape), rng.normal(size=shape[1])))
            )
    for _ in range(N_MATMUL):
        requests.append(
            (
                "matmul",
                (rng.normal(size=MATMUL_SHAPE), rng.normal(size=MATMUL_SHAPE)),
            )
        )
    order = rng.permutation(len(requests))
    return [requests[index] for index in order]


def _naive_thread_per_request(workload: Workload) -> float:
    """The baseline: one handler thread per request, no shared plan state.

    Each handler builds its own ``Solver`` (the stateless-server model:
    nothing survives between requests) and runs to completion before the
    next request is admitted.  Returns elapsed seconds.
    """
    start = time.perf_counter()
    for kind, operands in workload:
        error: List[BaseException] = []

        def handler() -> None:
            try:
                Solver(ArraySpec(W)).solve(kind, *operands)
            except BaseException as exc:  # pragma: no cover - failure path
                error.append(exc)

        thread = threading.Thread(target=handler)
        thread.start()
        thread.join()
        assert not error
    return time.perf_counter() - start


def _warm_sequential(workload: Workload) -> float:
    """Context baseline: one shared warm solver, one request at a time."""
    solver = Solver(ArraySpec(W))
    for kind, operands in workload:  # warm every plan first
        solver.solve(kind, *operands)
    start = time.perf_counter()
    for kind, operands in workload:
        solver.solve(kind, *operands)
    return time.perf_counter() - start


def _serve_concurrently(workload: Workload) -> Tuple[float, Any]:
    """The subsystem under test: N_CLIENTS submitting into the shard pool."""
    service = SolverService(
        ArraySpec(W),
        n_shards=N_SHARDS,
        backpressure="block",
        queue_depth=64,
        max_batch_size=16,
        max_batch_delay=0.002,
    )
    shares = [workload[index::N_CLIENTS] for index in range(N_CLIENTS)]
    futures: List[List[Any]] = [[] for _ in range(N_CLIENTS)]
    errors: List[BaseException] = []

    def client(client_id: int) -> None:
        try:
            for kind, operands in shares[client_id]:
                futures[client_id].append(service.submit(kind, *operands))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for client_futures in futures:
        for future in client_futures:
            future.result(timeout=120)
    elapsed = time.perf_counter() - start
    assert not errors
    stats = service.stats()
    service.close()
    return elapsed, stats


class TestServiceThroughput:
    def test_batched_serving_at_least_2x_naive(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        workload = _mixed_workload(rng)
        n_requests = len(workload)

        naive_time = _naive_thread_per_request(workload)
        warm_time = _warm_sequential(workload)
        service_time, stats = _serve_concurrently(workload)

        naive_throughput = n_requests / naive_time
        warm_throughput = n_requests / warm_time
        service_throughput = n_requests / service_time
        speedup = service_throughput / naive_throughput

        # Sanity on the serving path itself before the headline claim.
        assert stats.completed == n_requests
        assert stats.failed == stats.rejected == stats.shed == stats.expired == 0
        # Plan-keyed routing: one compile per distinct plan fleet-wide.
        assert stats.cache.misses == len(MATVEC_SHAPES) + 1
        assert stats.mean_batch_size > 1.0

        assert speedup >= 2.0, (
            f"serving gave only {speedup:.2f}x over the naive per-request "
            f"baseline ({service_throughput:.0f} vs {naive_throughput:.0f} "
            f"requests/s); admission batching or plan routing regressed"
        )

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "service_throughput",
                "unix_time": time.time(),
                "workload": {
                    "requests": n_requests,
                    "matvec_shapes": [list(s) for s in MATVEC_SHAPES],
                    "matvec_per_shape": MATVEC_PER_SHAPE,
                    "matmul": N_MATMUL,
                    "matmul_shape": list(MATMUL_SHAPE),
                    "w": W,
                    "clients": N_CLIENTS,
                    "shards": N_SHARDS,
                },
                "naive_thread_per_request": {
                    "seconds": naive_time,
                    "requests_per_second": naive_throughput,
                },
                "warm_sequential": {
                    "seconds": warm_time,
                    "requests_per_second": warm_throughput,
                },
                "service": {
                    "seconds": service_time,
                    "requests_per_second": service_throughput,
                    "mean_batch_size": stats.mean_batch_size,
                    "batch_size_histogram": {
                        str(size): count
                        for size, count in sorted(
                            stats.batch_size_histogram.items()
                        )
                    },
                    "cache_hit_rate": stats.cache.hit_rate,
                    "latency_p50_ms": (stats.latency_p50 or 0.0) * 1e3,
                    "latency_p95_ms": (stats.latency_p95 or 0.0) * 1e3,
                    "max_queue_depth": stats.max_queue_depth,
                },
                "speedup_vs_naive": speedup,
                "speedup_vs_warm_sequential": service_throughput / warm_throughput,
            }
        )

        report = ExperimentReport(
            experiment="service throughput: batched shards vs naive serving",
            description=(
                f"{n_requests} mixed requests ({N_CLIENTS} clients, "
                f"{N_SHARDS} shards, w={W}); naive = thread per request, "
                f"fresh solver each"
            ),
        )
        report.add(
            "service >= 2x naive",
            1,
            int(speedup >= 2.0),
            note=(
                f"naive {naive_throughput:.0f}/s, warm sequential "
                f"{warm_throughput:.0f}/s, service {service_throughput:.0f}/s "
                f"({speedup:.1f}x naive)"
            ),
        )
        report.add(
            "plan compiles across fleet",
            len(MATVEC_SHAPES) + 1,
            stats.cache.misses,
            note=f"mean batch size {stats.mean_batch_size:.2f}",
        )
        show_report(report)
