"""Serving-layer throughput: plan-keyed batched shards vs. naive serving.

The claim the :mod:`repro.service` subsystem exists to win: a mixed
concurrent workload served through ``SolverService`` — plan-keyed shard
routing (every plan compiles once, on its home shard), admission batching
(same-plan requests flush together through ``solve_batch``), bounded
queues — sustains **at least 2x** the throughput of the naive serving
model, where each request gets its own handler (one thread per request,
its own ``Solver``, no shared plan state) executed back-to-back.  The
naive model pays a plan compilation per request; the service pays one per
distinct plan *per service*.

For context the report also times the strongest sequential baseline — a
single warm ``Solver`` solving one request at a time — which isolates the
queueing/batching overhead the service adds on top of warm execution.

The cross-shard pipelined graph path carries its own claims, measured
here too: a two-branch diamond whose branches are pinned to distinct
shards achieves **at least 1.5x** level parallelism in modeled array
steps (the makespan the paper's hardware would see), and a stream of
deep-chain graphs overlaps across requests — the per-request execution
spans sum to more than the wall-clock window, which is only possible if
level k of one request ran while level k−1 of the next did.

Results are recorded in ``BENCH_service.json`` at the repository root (a
machine-readable trajectory point, keyed by git sha so re-runs update
rather than duplicate; CI uploads it as an artifact).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, List, Tuple

import numpy as np

from repro.analysis.trajectory import record_trajectory_point
from repro.api import ArraySpec, ExecutionOptions, Solver
from repro.graph import Graph, GraphCompiler, Jacobi, MatVec
from repro.iterative import ConvergenceCriteria
from repro.nn import Bias, Relu
from repro.service import SolverService

W = 4
N_SHARDS = 4
N_CLIENTS = 8
MATVEC_SHAPES = ((48, 48), (32, 32), (48, 32))
MATVEC_PER_SHAPE = 40
N_MATMUL = 40
MATMUL_SHAPE = (9, 9)

DIAMOND_N = 32
#: Vector widths along the deep chain; consecutive stages get distinct
#: matrix shapes, hence distinct plan keys, hence distinct shards.
CHAIN_DIMS = (32, 28, 24, 36, 30)
N_STREAM = 6

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

Workload = List[Tuple[str, Tuple[np.ndarray, ...]]]


def _mixed_workload(rng: np.random.Generator) -> Workload:
    """An interleaved matvec/matmul request stream (deterministic)."""
    requests: Workload = []
    for shape in MATVEC_SHAPES:
        for _ in range(MATVEC_PER_SHAPE):
            requests.append(
                ("matvec", (rng.normal(size=shape), rng.normal(size=shape[1])))
            )
    for _ in range(N_MATMUL):
        requests.append(
            (
                "matmul",
                (rng.normal(size=MATMUL_SHAPE), rng.normal(size=MATMUL_SHAPE)),
            )
        )
    order = rng.permutation(len(requests))
    return [requests[index] for index in order]


def _naive_thread_per_request(workload: Workload) -> float:
    """The baseline: one handler thread per request, no shared plan state.

    Each handler builds its own ``Solver`` (the stateless-server model:
    nothing survives between requests) and runs to completion before the
    next request is admitted.  Returns elapsed seconds.
    """
    start = time.perf_counter()
    for kind, operands in workload:
        error: List[BaseException] = []

        def handler() -> None:
            try:
                Solver(ArraySpec(W)).solve(kind, *operands)
            except BaseException as exc:  # pragma: no cover - failure path
                error.append(exc)

        thread = threading.Thread(target=handler)
        thread.start()
        thread.join()
        assert not error
    return time.perf_counter() - start


def _warm_sequential(workload: Workload) -> float:
    """Context baseline: one shared warm solver, one request at a time."""
    solver = Solver(ArraySpec(W))
    for kind, operands in workload:  # warm every plan first
        solver.solve(kind, *operands)
    start = time.perf_counter()
    for kind, operands in workload:
        solver.solve(kind, *operands)
    return time.perf_counter() - start


def _serve_concurrently(workload: Workload) -> Tuple[float, Any]:
    """The subsystem under test: N_CLIENTS submitting into the shard pool."""
    service = SolverService(
        ArraySpec(W),
        n_shards=N_SHARDS,
        backpressure="block",
        queue_depth=64,
        max_batch_size=16,
        max_batch_delay=0.002,
    )
    shares = [workload[index::N_CLIENTS] for index in range(N_CLIENTS)]
    futures: List[List[Any]] = [[] for _ in range(N_CLIENTS)]
    errors: List[BaseException] = []

    def client(client_id: int) -> None:
        try:
            for kind, operands in shares[client_id]:
                futures[client_id].append(service.submit(kind, *operands))
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    start = time.perf_counter()
    threads = [
        threading.Thread(target=client, args=(client_id,))
        for client_id in range(N_CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for client_futures in futures:
        for future in client_futures:
            future.result(timeout=120)
    elapsed = time.perf_counter() - start
    assert not errors
    stats = service.stats()
    service.close()
    return elapsed, stats


class TestServiceThroughput:
    def test_batched_serving_at_least_2x_naive(self, rng, show_report):
        from repro.analysis.report import ExperimentReport

        workload = _mixed_workload(rng)
        n_requests = len(workload)

        naive_time = _naive_thread_per_request(workload)
        warm_time = _warm_sequential(workload)
        service_time, stats = _serve_concurrently(workload)

        naive_throughput = n_requests / naive_time
        warm_throughput = n_requests / warm_time
        service_throughput = n_requests / service_time
        speedup = service_throughput / naive_throughput

        # Sanity on the serving path itself before the headline claim.
        assert stats.completed == n_requests
        assert stats.failed == stats.rejected == stats.shed == stats.expired == 0
        # Plan-keyed routing: one compile per distinct plan fleet-wide.
        assert stats.cache.misses == len(MATVEC_SHAPES) + 1
        assert stats.mean_batch_size > 1.0

        assert speedup >= 2.0, (
            f"serving gave only {speedup:.2f}x over the naive per-request "
            f"baseline ({service_throughput:.0f} vs {naive_throughput:.0f} "
            f"requests/s); admission batching or plan routing regressed"
        )

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "service_throughput",
                "unix_time": time.time(),
                "workload": {
                    "requests": n_requests,
                    "matvec_shapes": [list(s) for s in MATVEC_SHAPES],
                    "matvec_per_shape": MATVEC_PER_SHAPE,
                    "matmul": N_MATMUL,
                    "matmul_shape": list(MATMUL_SHAPE),
                    "w": W,
                    "clients": N_CLIENTS,
                    "shards": N_SHARDS,
                },
                "naive_thread_per_request": {
                    "seconds": naive_time,
                    "requests_per_second": naive_throughput,
                },
                "warm_sequential": {
                    "seconds": warm_time,
                    "requests_per_second": warm_throughput,
                },
                "service": {
                    "seconds": service_time,
                    "requests_per_second": service_throughput,
                    "mean_batch_size": stats.mean_batch_size,
                    "batch_size_histogram": {
                        str(size): count
                        for size, count in sorted(
                            stats.batch_size_histogram.items()
                        )
                    },
                    "cache_hit_rate": stats.cache.hit_rate,
                    "latency_p50_ms": (stats.latency_p50 or 0.0) * 1e3,
                    "latency_p95_ms": (stats.latency_p95 or 0.0) * 1e3,
                    "max_queue_depth": stats.max_queue_depth,
                },
                "speedup_vs_naive": speedup,
                "speedup_vs_warm_sequential": service_throughput / warm_throughput,
            }
        )

        report = ExperimentReport(
            experiment="service throughput: batched shards vs naive serving",
            description=(
                f"{n_requests} mixed requests ({N_CLIENTS} clients, "
                f"{N_SHARDS} shards, w={W}); naive = thread per request, "
                f"fresh solver each"
            ),
        )
        report.add(
            "service >= 2x naive",
            1,
            int(speedup >= 2.0),
            note=(
                f"naive {naive_throughput:.0f}/s, warm sequential "
                f"{warm_throughput:.0f}/s, service {service_throughput:.0f}/s "
                f"({speedup:.1f}x naive)"
            ),
        )
        report.add(
            "plan compiles across fleet",
            len(MATVEC_SHAPES) + 1,
            stats.cache.misses,
            note=f"mean batch size {stats.mean_batch_size:.2f}",
        )
        show_report(report)


def _diamond_graph(rng: np.random.Generator) -> Graph:
    """Balanced two-branch diamond: each branch models 517 array steps
    at n=32, w=4, so splitting the branches across shards halves the
    modeled level makespan."""
    a = rng.normal(size=(DIAMOND_N, DIAMOND_N))
    m = rng.normal(size=(DIAMOND_N, DIAMOND_N))
    m = (m + m.T) / 2.0
    m = m + (np.abs(m).sum(axis=1).max() + 1.0) * np.eye(DIAMOND_N)
    x = rng.normal(size=DIAMOND_N)
    src = Relu(x, name="src")
    left = MatVec(a, src, name="left")
    right = Jacobi(
        m,
        src,
        criteria=ConvergenceCriteria(atol=1e-30, max_iter=1),
        name="right",
    )
    return Graph(Bias(left, right, name="join"))


def _chain_graph(rng: np.random.Generator) -> Graph:
    """A deep matvec chain — one stage per level, all shapes distinct."""
    node = rng.normal(size=CHAIN_DIMS[0])
    for index in range(len(CHAIN_DIMS) - 1):
        matrix = rng.normal(size=(CHAIN_DIMS[index + 1], CHAIN_DIMS[index]))
        node = MatVec(matrix, node, name=f"stage{index}")
    return Graph(node)


class TestPipelinedGraphServing:
    def test_pipelined_graphs_overlap_and_win_level_parallelism(
        self, rng, show_report
    ):
        from repro.analysis.report import ExperimentReport

        # -- claim 1: the diamond's branches run on distinct shards and
        # the modeled array-step makespan drops by >= 1.5x.
        diamond = _diamond_graph(rng)
        with SolverService(ArraySpec(W), n_shards=2) as service:
            keys = diamond.plan_keys(W, ExecutionOptions())
            service.placement.assign(keys[diamond.names.index("left")], 0)
            service.placement.assign(keys[diamond.names.index("right")], 1)
            diamond_result = service.solve_graph(diamond)
        reference = GraphCompiler(Solver(ArraySpec(W))).run(diamond)
        for ours, theirs in zip(
            diamond_result.solutions, reference.solutions
        ):
            assert np.array_equal(ours.values, theirs.values)
        sequential_steps = diamond_result.modeled_sequential_steps()
        pipeline_steps = diamond_result.modeled_pipeline_steps()
        modeled_speedup = sequential_steps / pipeline_steps
        assert set(diamond_result.placements) == {0, 1}
        assert modeled_speedup >= 1.5, (
            f"diamond level parallelism modeled only {modeled_speedup:.2f}x "
            f"({pipeline_steps} vs {sequential_steps} array steps); the "
            f"placed branches are not overlapping"
        )

        # -- claim 2: a stream of deep chains overlaps across requests —
        # the per-request spans sum to more than the wall window.
        chain = _chain_graph(rng)
        n_stages = len(CHAIN_DIMS) - 1
        with SolverService(ArraySpec(W), n_shards=N_SHARDS) as service:
            for index, key in enumerate(
                chain.plan_keys(W, ExecutionOptions())
            ):
                service.placement.assign(key, index % N_SHARDS)
            warm = service.solve_graph(chain)  # compile + place once
            start = time.perf_counter()
            futures = [
                service.submit_graph(chain) for _ in range(N_STREAM)
            ]
            results = [future.result(timeout=120) for future in futures]
            wall = time.perf_counter() - start
            stats = service.stats()
        tail = f"stage{n_stages - 1}"
        for result in results:
            assert result.warm
            assert np.array_equal(result.output(tail), warm.output(tail))
        span_sum = sum(result.total_seconds for result in results)
        overlap_factor = span_sum / wall
        assert span_sum > wall, (
            f"request spans sum to {span_sum * 1e3:.1f}ms inside a "
            f"{wall * 1e3:.1f}ms wall window: the stream executed "
            f"serially, no cross-request pipelining happened"
        )
        assert stats.segments == (N_STREAM + 1) * n_stages
        assert stats.handoffs == (N_STREAM + 1) * (n_stages - 1)
        assert all(shard.segments > 0 for shard in stats.shards)

        record_trajectory_point(
            BENCH_PATH,
            {
                "benchmark": "service_pipelined_graphs",
                "unix_time": time.time(),
                "diamond": {
                    "n": DIAMOND_N,
                    "w": W,
                    "shards": 2,
                    "placements": list(diamond_result.placements),
                    "modeled_sequential_steps": sequential_steps,
                    "modeled_pipeline_steps": pipeline_steps,
                    "modeled_speedup": modeled_speedup,
                },
                "stream": {
                    "requests": N_STREAM,
                    "chain_stages": n_stages,
                    "chain_dims": list(CHAIN_DIMS),
                    "shards": N_SHARDS,
                    "wall_seconds": wall,
                    "sum_request_seconds": span_sum,
                    "overlap_factor": overlap_factor,
                    "segments": stats.segments,
                    "handoffs": stats.handoffs,
                    "handoff_lane_high_water": stats.max_handoff_depth,
                },
            },
        )

        report = ExperimentReport(
            experiment="cross-shard pipelined graph serving",
            description=(
                f"diamond n={DIAMOND_N} on 2 shards; {N_STREAM}-request "
                f"stream of {n_stages}-stage chains on {N_SHARDS} shards"
            ),
        )
        report.add(
            "diamond modeled level parallelism >= 1.5x",
            1,
            int(modeled_speedup >= 1.5),
            note=(
                f"{pipeline_steps} pipelined vs {sequential_steps} "
                f"sequential array steps ({modeled_speedup:.2f}x), "
                f"branches on shards {sorted(set(diamond_result.placements))}"
            ),
        )
        report.add(
            "stream overlaps across requests",
            1,
            int(span_sum > wall),
            note=(
                f"{span_sum * 1e3:.1f}ms of request spans in a "
                f"{wall * 1e3:.1f}ms window ({overlap_factor:.2f}x), "
                f"{stats.handoffs} handoff(s)"
            ),
        )
        show_report(report)
