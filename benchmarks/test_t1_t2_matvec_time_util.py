"""T1/T2 — matrix-vector time and utilization formulas (Section 2).

Sweeps problem shapes and array sizes, measures ``T`` (steps) and ``eta``
(utilization) on the cycle-accurate linear array, and checks them against
the paper's closed forms:

    T  = 2 w n_bar m_bar + 2w - 3          (no overlapping)
    T  =   w n_bar m_bar + 2w - 2          (overlapped halves)
    eta -> 1/2 without overlapping, -> 1 with overlapping.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.core.analytic import matvec_steps, matvec_utilization
from repro.core.matvec import SizeIndependentMatVec
from repro.matrices.padding import block_count

SWEEP = [
    (6, 9, 3),
    (9, 9, 3),
    (12, 12, 3),
    (8, 8, 4),
    (16, 8, 4),
    (10, 15, 5),
    (24, 24, 3),
]


def run_sweep(rng, overlapped: bool):
    rows = []
    for n, m, w in SWEEP:
        if overlapped and block_count(n, w) < 2:
            continue
        matrix = rng.uniform(-1.0, 1.0, size=(n, m))
        x = rng.uniform(-1.0, 1.0, size=m)
        solution = SizeIndependentMatVec(w, overlapped=overlapped).solve(matrix, x)
        assert np.allclose(solution.y, matrix @ x)
        rows.append((n, m, w, solution))
    return rows


def test_t1_step_counts(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng, False), rounds=1, iterations=1)
    report = ExperimentReport("T1", "matrix-vector steps: T = 2 w nm + 2w - 3")
    for n, m, w, solution in rows:
        n_bar, m_bar = block_count(n, w), block_count(m, w)
        report.add(
            f"T(n={n:>2}, m={m:>2}, w={w})",
            matvec_steps(n_bar, m_bar, w),
            solution.measured_steps,
        )
    assert report.all_match
    show_report(report)


def test_t1_overlapped_step_counts(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng, True), rounds=1, iterations=1)
    report = ExperimentReport("T1b", "overlapped steps: T = w nm + 2w - 2 (even n_bar)")
    for n, m, w, solution in rows:
        n_bar, m_bar = block_count(n, w), block_count(m, w)
        if n_bar % 2 == 0:
            expected = matvec_steps(n_bar, m_bar, w, overlapped=True)
            note = ""
        else:
            # With an odd number of block rows the larger (first) half
            # dominates the schedule and the smaller half hides behind it.
            expected = 2 * w * ((n_bar + 1) // 2) * m_bar + 2 * w - 3
            note = "odd n_bar: larger half dominates"
        report.add(f"T(n={n:>2}, m={m:>2}, w={w})", expected, solution.measured_steps, note)
    assert report.all_match
    show_report(report)


def test_t2_utilization(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng, False), rounds=1, iterations=1)
    report = ExperimentReport(
        "T2", "matrix-vector utilization: eta = 1 / (2 + 2/nm - 3/wnm) -> 1/2"
    )
    for n, m, w, solution in rows:
        n_bar, m_bar = block_count(n, w), block_count(m, w)
        report.add(
            f"eta(n={n:>2}, m={m:>2}, w={w})",
            matvec_utilization(n_bar, m_bar, w),
            solution.measured_utilization,
        )
    assert report.all_match
    # The largest problem sits within 10% of the 1/2 limit.
    largest = rows[-1][3]
    assert largest.measured_utilization > 0.45
    show_report(report)


def test_t2_overlapped_utilization(benchmark, rng, show_report):
    rows = benchmark.pedantic(run_sweep, args=(rng, True), rounds=1, iterations=1)
    report = ExperimentReport("T2b", "overlapped utilization -> 1")
    for n, m, w, solution in rows:
        n_bar, m_bar = block_count(n, w), block_count(m, w)
        if n_bar % 2 != 0:
            continue
        report.add(
            f"eta(n={n:>2}, m={m:>2}, w={w})",
            matvec_utilization(n_bar, m_bar, w, overlapped=True),
            solution.measured_utilization,
        )
    assert report.all_match
    assert rows[-1][3].measured_utilization > 0.85
    show_report(report)
